// Package core is the Samhita runtime: it assembles the manager, the
// memory servers, the simulated fabric and the per-thread software
// caches into the virtual shared memory system of the paper, and exposes
// it through the backend-neutral vm.VM interface.
//
// Topology follows Figure 1 and the evaluation setup of Section III: one
// node runs the manager, one or more nodes run memory servers, and
// compute threads execute on the remaining nodes (8 cores per node,
// matching the dual quad-core Harpertown compute nodes — or the cores of
// a coprocessor in the heterogeneous mapping). Every component-to-
// component message crosses the fabric's link model.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proto"

	"repro/internal/faultnet"
	"repro/internal/layout"
	"repro/internal/manager"
	"repro/internal/memserver"
	"repro/internal/scl"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/vtime"
)

// Node-id plan for the fabric.
const (
	managerNode         scl.NodeID = 1
	failoverCtlNode     scl.NodeID = 3
	firstMgrReplicaNode scl.NodeID = 4 // manager replicas 1.. (replica 0 is managerNode)
	firstServerNode     scl.NodeID = 10
	firstStandbyNode    scl.NodeID = 50
	firstThreadNode     scl.NodeID = 100
)

// Node-id helpers for fault scripting (faultnet.Kill targets and
// partition nodes are fabric node ids, not thread/server indices).

// ManagerNode is the fabric node of the central manager (the initial
// leader when manager replication is on).
func ManagerNode() scl.NodeID { return managerNode }

// MgrReplicaNode is the fabric node of manager replica i (0-based;
// replica 0 is the initial leader at ManagerNode).
func MgrReplicaNode(i int) scl.NodeID {
	if i == 0 {
		return managerNode
	}
	return firstMgrReplicaNode + scl.NodeID(i-1)
}

// ServerNode is the fabric node of primary memory server i (0-based).
func ServerNode(i int) scl.NodeID { return firstServerNode + scl.NodeID(i) }

// StandbyNode is the fabric node of the warm standby for server i.
func StandbyNode(i int) scl.NodeID { return firstStandbyNode + scl.NodeID(i) }

// ThreadNode is the fabric node of the compute thread with protocol
// writer id w. Writer ids start at 1 (0 means "no writer") and are
// assigned sequentially across a runtime's lifetime, so in a runtime's
// first Run thread t has writer id t+1.
func ThreadNode(w int) scl.NodeID { return firstThreadNode + scl.NodeID(w) }

// Transport abstracts how component endpoints attach to the
// interconnect. The default is the in-process simulated fabric; a
// scl.TCPFactory runs the identical protocol over real sockets — the
// SCL portability the paper designs for (IB verbs today, SCIF
// tomorrow).
type Transport interface {
	NewEndpoint(id scl.NodeID) (scl.Endpoint, error)
	Close() error
}

// Config parameterizes a Samhita instance.
type Config struct {
	// Geo is the address-space geometry (page size, line pages, memory
	// servers, striping).
	Geo layout.Geometry
	// Link is the interconnect model between components (QDR InfiniBand
	// in the paper's testbed; PCIe/SCIF in its future-work target).
	Link vtime.LinkModel
	// CPU is the compute-side cost model.
	CPU vtime.CPUModel
	// CacheLines bounds each thread's software cache (0 = default).
	CacheLines int
	// Prefetch enables anticipatory paging.
	Prefetch bool
	// PrefetchDepth is how many lines ahead the stride prefetcher runs
	// when Prefetch is on (0 = 1, the paper's one-line-ahead strategy).
	PrefetchDepth int
	// ArenaChunk is the size of the chunks threads request for their
	// local arenas (0 = 256 KiB).
	ArenaChunk int
	// StripeMin is the size at (and above) which GlobalAlloc uses the
	// striped strategy instead of the shared zone (0 = 1 MiB).
	StripeMin int
	// ThreadsPerNode controls placement (0 = 8, the paper's core count
	// per node).
	ThreadsPerNode int
	// ServerShards splits each memory server's page space into this many
	// independently scheduled shards (0 or 1 = the historical single
	// event loop). Shards map line-granularly via Geometry.ShardOf;
	// fetches, diff batches and evict flushes against disjoint shards
	// are served concurrently, and the dispatcher splits multi-shard
	// requests and joins the replies. Per-page interval-tag semantics
	// and sequenced-run determinism are preserved.
	ServerShards int
	// HotBytes, when positive, puts each memory server's page store
	// behind a tiered layout: at most HotBytes of uncompressed pages per
	// server stay resident (an LRU hot set, split across its shards),
	// and pages past the budget are demoted — word-run compressed — to
	// a cold tier whose promotion/demotion costs follow ColdPreset.
	// 0 disables tiering: every page stays hot and the data path is
	// byte-identical to the untiered server.
	HotBytes int64
	// ColdPreset names the cold tier's cost model ("cold-nvme"/"nvme",
	// the default, or "cold-remote"/"remote" — a far-memory frame table
	// over the fabric). Only consulted when HotBytes > 0.
	ColdPreset string
	// ManagerShards splits the manager's synchronization state into this
	// many homes (0 or 1 = the historical single event loop, preserved
	// bit-identically). Locks, barriers and condition variables map to
	// homes by a splitmix-mixed id; each home advances its own virtual
	// clock, so traffic on unrelated sync objects stops serializing on
	// one manager clock. On the sequenced fabric a sharded manager also
	// hands contended locks over peer-to-peer: the home announces the
	// next waiter to the holder, which forwards the grant (plus the
	// notice backlog) directly at release.
	ManagerShards int
	// ManagerReplicas runs the manager as a replica group of this size
	// (0 or 1 = the historical single manager, preserved bit-
	// identically). Every client-plane mutation is driven through a
	// replicated log before it is applied, so a standby replica holds
	// the same lock/barrier/cond tables, notice directory, membership
	// and allocation zones as the leader; when the leader dies (or is
	// deposed), the runtime promotes the lowest-indexed survivor and
	// redirects every manager-bound send at it. Replica-to-replica
	// links are priced vtime.IntraNode: the paper's manager is one
	// process, and its replicated form co-locates the replicas.
	ManagerReplicas int
	// DisableFineGrain turns off RegC's consistency-region store
	// instrumentation: stores under a lock are treated like ordinary
	// stores (page diffs + invalidation), degrading the protocol to
	// plain page-grained lazy release consistency. Used by the ablation
	// benchmarks to isolate what the fine-grained update path buys.
	DisableFineGrain bool
	// NoRecordCoalesce turns off append-time coalescing of adjacent
	// consistency-region store records (ablation: measures what
	// coalescing buys in record count and wire bytes).
	NoRecordCoalesce bool
	// Transport selects the communication substrate (nil = the
	// simulated fabric priced by Link).
	Transport Transport
	// Retry, if non-nil, wraps every endpoint the runtime creates —
	// compute threads, cache agents, memory servers, manager — in the
	// SCL retry layer: transient transport failures (dead TCP
	// connections, injected faults, partitions) are retried with
	// exponential backoff, and exhaustion surfaces scl.ErrUnreachable
	// as a clean error instead of a hang. Leave Timeout zero: DSM
	// calls legitimately park (locks, barriers, tag-parked fetches).
	Retry *scl.RetryPolicy
	// Faults, if non-nil, injects transport faults (drops, delays,
	// duplicate responses, partitions) beneath the retry layer on
	// every endpoint — chaos testing. Set Retry as well or the
	// injected faults will surface as immediate errors.
	Faults *faultnet.Injector
	// Net receives the transport-robustness counters (retries,
	// timeouts, injected faults). Allocated automatically when Retry
	// or Faults is set; supply one to share it with other collectors.
	Net *stats.Net
	// Tier receives the tiered-page-store counters (hot hits, tier
	// moves, snapshot seals, CoW breaks). Allocated automatically;
	// supply one to accumulate across several runtimes.
	Tier *stats.Tier
	// Trace, if non-nil, records protocol events (faults, fetches,
	// lock/barrier spans) in virtual time for Chrome-trace export.
	Trace *trace.Collector
	// Liveness, if non-nil, turns on the liveness layer: heartbeat
	// membership at the manager (dead threads' locks are force-
	// released, barrier counts recomputed, parked waiters completed
	// with proto.ErrPeerDied instead of hanging) and, with Standby
	// set, warm-standby replication and failover for the memory
	// servers. Heartbeats are wall-clock driven and processed at zero
	// virtual cost, so simulated-time results stay deterministic.
	Liveness *LivenessConfig
	// ManagerLink, if non-nil, overrides the link model for traffic to
	// and from the manager. The paper's Section V observes that routing
	// every synchronization through the manager over the slow fabric
	// adds avoidable overhead on a single node; pointing this at
	// vtime.IntraNode models that proposed optimization (see the
	// "mgrlink" ablation). Only honoured by the simulated-fabric
	// transport.
	ManagerLink *vtime.LinkModel
}

// LivenessConfig parameterizes the liveness layer.
type LivenessConfig struct {
	// HeartbeatEvery is the wall-clock heartbeat period (0 = 5ms).
	HeartbeatEvery time.Duration
	// MissedBeats is how many periods may elapse without a beat before
	// a member is declared dead (0 = 4).
	MissedBeats int
	// Standby boots one warm-standby memory server per primary and
	// streams every applied mutation to it; when a primary dies, the
	// runtime promotes its standby and redirects fetches there. It
	// also disables the lazy single-writer optimization: retained
	// diffs live only in a writer's memory and would be lost with it,
	// so releases must put the bytes at the (replicated) home.
	Standby bool
	// Live receives the liveness counters (allocated automatically;
	// supply one to share it with other collectors).
	Live *stats.Liveness
}

// Lease is the wall-clock window after which a silent member is
// declared dead.
func (lc *LivenessConfig) Lease() time.Duration {
	return lc.HeartbeatEvery * time.Duration(lc.MissedBeats)
}

// DefaultConfig returns the configuration matching the paper's testbed.
func DefaultConfig() Config {
	return Config{
		Geo:            layout.DefaultGeometry(),
		Link:           vtime.QDRInfiniBand,
		CPU:            vtime.DefaultCPU,
		CacheLines:     pagecacheDefaultLines,
		Prefetch:       true,
		ArenaChunk:     256 << 10,
		StripeMin:      1 << 20,
		ThreadsPerNode: 8,
	}
}

const pagecacheDefaultLines = 4096

// HeterogeneousConfig returns the configuration of the paper's Figure-1
// scenario — the system the whole paper is arguing for: compute threads
// on a Xeon-Phi-class coprocessor (many slow cores, small memory used
// purely as cache), with the manager and memory server on the host
// processor whose large DRAM backs the global address space, connected
// by the PCI Express bus through a SCIF-class SCL implementation.
func HeterogeneousConfig() Config {
	cfg := DefaultConfig()
	cfg.Link = vtime.PCIeSCIF
	cfg.CPU = vtime.XeonPhiCPU
	cfg.ThreadsPerNode = 60 // one KNC-class coprocessor
	cfg.CacheLines = 2048   // the card's memory is smaller than the host's
	return cfg
}

func (c *Config) fillDefaults() {
	if c.Geo.PageSize == 0 {
		c.Geo = layout.DefaultGeometry()
	}
	if c.Link.Name == "" {
		c.Link = vtime.QDRInfiniBand
	}
	if c.CPU.FlopTime == 0 {
		c.CPU = vtime.DefaultCPU
	}
	if c.CacheLines <= 0 {
		c.CacheLines = pagecacheDefaultLines
	}
	if c.ArenaChunk <= 0 {
		c.ArenaChunk = 256 << 10
	}
	if c.StripeMin <= 0 {
		c.StripeMin = 1 << 20
	}
	if c.ThreadsPerNode <= 0 {
		c.ThreadsPerNode = 8
	}
	if c.ServerShards < 1 {
		c.ServerShards = 1
	}
	if c.ManagerShards < 1 {
		c.ManagerShards = 1
	}
	if c.ManagerReplicas < 1 {
		c.ManagerReplicas = 1
	}
	if c.Net == nil && (c.Retry != nil || c.Faults != nil) {
		c.Net = new(stats.Net)
	}
	if c.Liveness != nil {
		if c.Liveness.HeartbeatEvery <= 0 {
			c.Liveness.HeartbeatEvery = 5 * time.Millisecond
		}
		if c.Liveness.MissedBeats <= 0 {
			c.Liveness.MissedBeats = 4
		}
		if c.Liveness.Live == nil {
			c.Liveness.Live = new(stats.Liveness)
		}
	}
}

// Runtime is a running Samhita instance.
type Runtime struct {
	cfg       Config
	fabric    *simnet.Fabric // nil when a custom Transport is used
	transport Transport

	// gate is the fabric's runnable-token ledger. On a sequenced fabric
	// (clean simulated runs) every goroutine that can send traffic must
	// report spawn/park/exit through it; otherwise it is a no-op.
	gate simnet.Gate

	mgr      *manager.Manager
	mgrs     []*manager.Manager // all manager replicas; mgrs[0] == mgr
	servers  []*memserver.Server
	standbys []*memserver.Server
	wg       sync.WaitGroup

	// homes is the address book: the fabric node currently serving
	// each home. Failover atomically redirects an entry to the
	// promoted standby; data-path senders read it per attempt.
	homes []atomic.Int64
	// mgrAddr/mgrIdx are the manager's address-book entry: the fabric
	// node (and replica index) currently leading. Manager failover
	// promotes the next replica and redirects them.
	mgrAddr atomic.Int64
	mgrIdx  atomic.Int32
	// replLive collects manager-replication counters (elections, log
	// appends, snapshots). With the liveness layer on it aliases
	// cfg.Liveness.Live; on a clean sequenced run it is runtime-private
	// so the counters stay observable. Nil when ManagerReplicas <= 1.
	replLive *stats.Liveness
	failMu   sync.Mutex
	failCtl  scl.Endpoint // promotion endpoint (nil unless Standby or ManagerReplicas > 1)

	// tier collects the tiered-page-store and snapshot/fork counters
	// across every memory server (and standby).
	tier *stats.Tier

	// hbStop stops the memory servers' heartbeat goroutines at Close.
	hbStop chan struct{}
	hbWG   sync.WaitGroup

	nextSync   atomic.Uint32 // lock/barrier/cond id allocator
	nextThread atomic.Uint32

	closeOnce sync.Once
	closeErr  error
}

// livenessEnabled reports whether the liveness layer is on.
func (rt *Runtime) livenessEnabled() bool { return rt.cfg.Liveness != nil }

// standbyEnabled reports whether warm-standby replication is on.
func (rt *Runtime) standbyEnabled() bool {
	return rt.cfg.Liveness != nil && rt.cfg.Liveness.Standby
}

// Liveness exposes the liveness counters (nil unless Liveness is
// configured).
func (rt *Runtime) Liveness() *stats.Liveness {
	if rt.cfg.Liveness == nil {
		return nil
	}
	return rt.cfg.Liveness.Live
}

// ReplLiveness exposes the manager-replication counters (elections,
// log entries, snapshots). With the liveness layer on it is the same
// object Liveness returns; on a clean sequenced run it is a
// runtime-private collector so the counters stay observable. Nil
// unless the manager is replicated.
func (rt *Runtime) ReplLiveness() *stats.Liveness { return rt.replLive }

// isPeerFailure reports whether err means the peer is gone (declared
// dead, crash-killed, retry budget exhausted, or a standby answering
// before promotion) — the failures that warrant a failover attempt.
func isPeerFailure(err error) bool {
	return errors.Is(err, proto.ErrPeerDied) ||
		errors.Is(err, scl.ErrUnreachable) ||
		errors.Is(err, proto.ErrNotPromoted)
}

// isMgrFailure reports whether err warrants a manager failover: the
// leader is gone, or it answered as a deposed leader / standby replica
// (CodeNotLeader — the manager-replication mirror of ErrNotPromoted).
func isMgrFailure(err error) bool {
	return isPeerFailure(err) || errors.Is(err, proto.ErrNotLeader)
}

var _ vm.VM = (*Runtime)(nil)

// New boots a Samhita instance: it creates the fabric, starts the
// manager and the memory servers, and returns the runtime ready to Run
// threads.
func New(cfg Config) (*Runtime, error) {
	cfg.fillDefaults()
	if err := cfg.Geo.Validate(); err != nil {
		return nil, err
	}
	tierModel, ok := vtime.TierPreset(cfg.ColdPreset)
	if !ok {
		return nil, fmt.Errorf("core: unknown cold-tier preset %q", cfg.ColdPreset)
	}
	rt := &Runtime{cfg: cfg, transport: cfg.Transport, tier: cfg.Tier}
	if rt.tier == nil {
		rt.tier = new(stats.Tier)
	}
	if rt.transport == nil {
		rt.fabric = simnet.NewFabric(cfg.Link)
		if cfg.ManagerLink != nil || cfg.ManagerReplicas > 1 {
			base := cfg.Link
			mgrLink := base
			if cfg.ManagerLink != nil {
				mgrLink = *cfg.ManagerLink
			}
			replicas := cfg.ManagerReplicas
			isMgr := func(n scl.NodeID) bool {
				return n == managerNode ||
					(n >= firstMgrReplicaNode && n < firstMgrReplicaNode+scl.NodeID(replicas-1))
			}
			rt.fabric.SetLinkFn(func(src, dst scl.NodeID) vtime.LinkModel {
				switch {
				case replicas > 1 && isMgr(src) && isMgr(dst):
					// The replica group is co-located: replication round
					// trips ride intra-node links, not the fabric.
					return vtime.IntraNode
				case isMgr(src) || isMgr(dst):
					return mgrLink
				}
				return base
			})
		}
		rt.transport = simTransport{fabric: rt.fabric}
	}
	// Clean simulated runs get deterministic message delivery: identical
	// configs then produce bit-identical virtual times and statistics.
	// Fault injection, retry timeouts and liveness heartbeats are driven
	// by real time, so runs using them keep the real-time fabric.
	if rt.fabric != nil && cfg.Faults == nil && cfg.Retry == nil && cfg.Liveness == nil {
		rt.fabric.Sequence()
	}
	rt.gate = simnet.NopGate()
	if rt.fabric != nil {
		rt.gate = rt.fabric.Gate()
	}
	// The caller's goroutine counts as runnable from New until Close.
	rt.gate.Resume()
	if cfg.Faults != nil {
		cfg.Faults.SetNetStats(cfg.Net)
		cfg.Faults.SetTrace(cfg.Trace)
	}
	mgrNodes := make([]scl.NodeID, cfg.ManagerReplicas)
	for i := range mgrNodes {
		mgrNodes[i] = MgrReplicaNode(i)
	}
	rt.mgrAddr.Store(int64(managerNode))
	var dataNodes []scl.NodeID
	if rt.livenessEnabled() {
		rt.hbStop = make(chan struct{})
		// The manager sends reaped writers' obituaries to the whole data
		// plane — standbys included, since a fetch can park at a promoted
		// standby on a dead writer's never-shipped interval.
		dataNodes = make([]scl.NodeID, 0, 2*cfg.Geo.NumServers)
		for i := 0; i < cfg.Geo.NumServers; i++ {
			dataNodes = append(dataNodes, firstServerNode+scl.NodeID(i))
		}
		if rt.standbyEnabled() {
			for i := 0; i < cfg.Geo.NumServers; i++ {
				dataNodes = append(dataNodes, firstStandbyNode+scl.NodeID(i))
			}
		}
	}
	for i := 0; i < cfg.ManagerReplicas; i++ {
		mgrEP, err := rt.newEndpoint(mgrNodes[i])
		if err != nil {
			return nil, fmt.Errorf("core: manager replica %d endpoint: %w", i, err)
		}
		mg := manager.New(mgrEP, cfg.Geo)
		mg.SetShards(cfg.ManagerShards)
		// Same inline-on-sequenced rule as the memory servers: the
		// sequencer grants one message at a time, so shard goroutines
		// could not overlap and would deadlock the runnable-token ledger.
		mg.SetSequenced(rt.fabric != nil && rt.fabric.Sequenced())
		if rt.livenessEnabled() {
			// Every replica gets the lease table and data-node list: a
			// promoted follower must reap future deaths and re-broadcast
			// earlier terms' obituaries itself.
			mg.EnableLiveness(cfg.Liveness.Lease(), cfg.Liveness.Live, cfg.Trace)
			mg.SetDataNodes(dataNodes)
		}
		if cfg.ManagerReplicas > 1 {
			if rt.replLive == nil {
				if rt.livenessEnabled() {
					rt.replLive = cfg.Liveness.Live
				} else {
					rt.replLive = new(stats.Liveness)
				}
			}
			mg.SetReplication(manager.Replication{Self: i, Nodes: mgrNodes, Live: rt.replLive})
		}
		rt.mgrs = append(rt.mgrs, mg)
		rt.wg.Add(1)
		rt.gate.Resume()
		go func() {
			defer rt.wg.Done()
			defer rt.gate.Pause()
			mg.Run()
		}()
	}
	rt.mgr = rt.mgrs[0]
	agentAddr := func(writer uint32) scl.NodeID { return firstThreadNode + scl.NodeID(writer) }
	rt.homes = make([]atomic.Int64, cfg.Geo.NumServers)
	for i := 0; i < cfg.Geo.NumServers; i++ {
		node := firstServerNode + scl.NodeID(i)
		rt.homes[i].Store(int64(node))
		srvEP, err := rt.newEndpoint(node)
		if err != nil {
			return nil, fmt.Errorf("core: memory server %d endpoint: %w", i, err)
		}
		srv := memserver.New(srvEP, i, cfg.Geo, cfg.CPU, agentAddr)
		srv.SetShards(cfg.ServerShards)
		srv.SetTier(cfg.HotBytes, tierModel, rt.tier)
		// On the sequenced fabric the server processes shard items
		// inline — worker goroutines would deadlock the runnable-token
		// ledger (see the memserver package doc) and could not overlap
		// in real time anyway, since the sequencer grants one message
		// at a time.
		srv.SetSequenced(rt.fabric != nil && rt.fabric.Sequenced())
		if rt.livenessEnabled() {
			srv.SetLiveness(cfg.Liveness.Live)
		}
		if rt.standbyEnabled() {
			srv.SetReplica(firstStandbyNode + scl.NodeID(i))
		}
		rt.servers = append(rt.servers, srv)
		rt.wg.Add(1)
		rt.gate.Resume()
		go func() {
			defer rt.wg.Done()
			defer rt.gate.Pause()
			srv.Run()
		}()
		if rt.livenessEnabled() {
			// The server heartbeats from its own endpoint, so a crash
			// that severs the node also silences its beats. Server
			// beats double as the manager's reap prodder.
			rt.hbWG.Add(1)
			go rt.serverHeartbeat(srvEP, uint32(i)+1, node)
		}
	}
	if rt.standbyEnabled() {
		for i := 0; i < cfg.Geo.NumServers; i++ {
			node := firstStandbyNode + scl.NodeID(i)
			sbEP, err := rt.newEndpoint(node)
			if err != nil {
				return nil, fmt.Errorf("core: standby server %d endpoint: %w", i, err)
			}
			sb := memserver.New(sbEP, i, cfg.Geo, cfg.CPU, agentAddr)
			// The standby shards identically to its primary, so the
			// per-shard replication stream routes each forwarded
			// sub-batch wholly to the matching shard, preserving
			// per-page apply order. (Standby runs are never sequenced.)
			sb.SetShards(cfg.ServerShards)
			// Same budget as the primary: after a promotion the survivor
			// must fit the same memory envelope.
			sb.SetTier(cfg.HotBytes, tierModel, rt.tier)
			sb.SetStandby(true)
			sb.SetLiveness(cfg.Liveness.Live)
			rt.standbys = append(rt.standbys, sb)
			rt.wg.Add(1)
			rt.gate.Resume()
			go func() {
				defer rt.wg.Done()
				defer rt.gate.Pause()
				sb.Run()
			}()
		}
	}
	if rt.standbyEnabled() || cfg.ManagerReplicas > 1 {
		ctl, err := rt.newEndpoint(failoverCtlNode)
		if err != nil {
			return nil, fmt.Errorf("core: failover endpoint: %w", err)
		}
		rt.failCtl = ctl
	}
	return rt, nil
}

// serverHeartbeat posts a memory server's membership beats until Close.
// A terminal post failure (the node was crash-killed) or a sustained
// transient failure stops the beats — exactly the silence the manager's
// lease table is listening for.
func (rt *Runtime) serverHeartbeat(ep scl.Endpoint, member uint32, node scl.NodeID) {
	defer rt.hbWG.Done()
	hb := &proto.Heartbeat{Member: member, Class: proto.MemberServer, Node: uint32(node)}
	if err := rt.beat(ep, hb); err != nil {
		return
	}
	tick := time.NewTicker(rt.cfg.Liveness.HeartbeatEvery)
	defer tick.Stop()
	fails := 0
	for {
		select {
		case <-rt.hbStop:
			return
		case <-tick.C:
		}
		if !rt.beatOnce(ep, hb, &fails) {
			return
		}
	}
}

// beat posts one membership heartbeat to the current manager, following
// the address book. With manager replicas configured a leader death is
// NOT the heartbeater's death: the beat is dropped and the next tick
// reaches whichever replica the (client-driven) failover promoted.
func (rt *Runtime) beat(ep scl.Endpoint, hb *proto.Heartbeat) error {
	_, err := ep.Post(rt.managerNode(), hb, 0)
	if err == nil || scl.IsTransient(err) {
		return nil
	}
	if rt.cfg.ManagerReplicas > 1 && isMgrFailure(err) {
		return nil
	}
	return err
}

// beatOnce is one heartbeat tick: it reports false when the beats must
// stop (this node's own death, or sustained failure with no replica
// group to ride it out).
func (rt *Runtime) beatOnce(ep scl.Endpoint, hb *proto.Heartbeat, fails *int) bool {
	if _, err := ep.Post(rt.managerNode(), hb, 0); err != nil {
		replicated := rt.cfg.ManagerReplicas > 1
		if !scl.IsTransient(err) && !(replicated && isMgrFailure(err)) {
			return false
		}
		if *fails++; *fails > 3 && !replicated {
			return false
		}
	} else {
		*fails = 0
	}
	return true
}

// newEndpoint attaches one component endpoint, layering the fault
// injector (innermost, so injected faults look like transport failures)
// and the retry policy (outermost, so retries re-traverse the injector)
// over the raw transport endpoint.
func (rt *Runtime) newEndpoint(id scl.NodeID) (scl.Endpoint, error) {
	ep, err := rt.transport.NewEndpoint(id)
	if err != nil {
		return nil, err
	}
	if rt.cfg.Faults != nil {
		ep = rt.cfg.Faults.Wrap(ep)
	}
	if rt.cfg.Retry != nil {
		ep = scl.WithRetry(ep, *rt.cfg.Retry, rt.cfg.Net)
	}
	return ep, nil
}

// NetStats exposes the transport-robustness counters (nil unless Retry
// or Faults is configured).
func (rt *Runtime) NetStats() *stats.Net { return rt.cfg.Net }

// simTransport is the default transport: the in-process virtual-time
// fabric.
type simTransport struct{ fabric *simnet.Fabric }

func (s simTransport) NewEndpoint(id scl.NodeID) (scl.Endpoint, error) {
	return scl.NewSimEndpoint(s.fabric, id), nil
}

func (s simTransport) Close() error { return nil }

// Name implements vm.VM.
func (rt *Runtime) Name() string { return "samhita" }

// Config returns the runtime's (default-filled) configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// Manager exposes the current leader manager for stats inspection (the
// only manager, when replication is off).
func (rt *Runtime) Manager() *manager.Manager { return rt.mgrs[rt.mgrIdx.Load()] }

// Managers exposes every manager replica, by index.
func (rt *Runtime) Managers() []*manager.Manager { return rt.mgrs }

// Servers exposes the memory servers for stats inspection.
func (rt *Runtime) Servers() []*memserver.Server { return rt.servers }

// TierStats exposes the tiered-page-store and snapshot/fork counters,
// aggregated across every memory server and standby.
func (rt *Runtime) TierStats() *stats.Tier { return rt.tier }

// Fabric exposes the simulated fabric for traffic accounting; it is
// nil when the runtime uses a custom transport.
func (rt *Runtime) Fabric() *simnet.Fabric { return rt.fabric }

func (rt *Runtime) serverNode(home int) scl.NodeID {
	return firstServerNode + scl.NodeID(home)
}

// homeNode reads the address-book entry for a home: the primary's node
// until a failover redirects it to the promoted standby.
func (rt *Runtime) homeNode(home int) scl.NodeID {
	return scl.NodeID(rt.homes[home].Load())
}

// managerNode reads the manager's address-book entry: the current
// leader's fabric node.
func (rt *Runtime) managerNode() scl.NodeID {
	return scl.NodeID(rt.mgrAddr.Load())
}

// managerFailover promotes the next manager replica and redirects the
// address book at it. failed is the node the caller's send failed
// against: concurrent callers for the same death serialize, and all but
// the first find the book already moved past it. Replicas that are
// themselves dead are skipped; each promotion carries a strictly higher
// term, so a deposed old leader can never ack its way back in.
func (rt *Runtime) managerFailover(failed scl.NodeID) (scl.NodeID, error) {
	if rt.cfg.ManagerReplicas <= 1 {
		return 0, fmt.Errorf("core: manager unreachable and no replicas configured")
	}
	rt.failMu.Lock()
	defer rt.failMu.Unlock()
	if cur := rt.managerNode(); cur != failed {
		return cur, nil // another caller already failed over
	}
	for idx := int(rt.mgrIdx.Load()) + 1; idx < rt.cfg.ManagerReplicas; idx++ {
		node := MgrReplicaNode(idx)
		var ack proto.Ack
		if _, err := rt.failCtl.Call(node, &proto.PromoteMgr{Term: uint64(idx) + 1}, &ack, 0); err != nil {
			if isPeerFailure(err) {
				continue // this replica died too; try the next
			}
			return 0, fmt.Errorf("core: promoting manager replica %d: %w", idx, err)
		}
		rt.mgrIdx.Store(int32(idx))
		rt.mgrAddr.Store(int64(node))
		if rt.cfg.Liveness != nil {
			rt.cfg.Liveness.Live.MgrFailovers.Add(1)
		}
		rt.cfg.Trace.Span("runtime", trace.CatLive, "manager-failover", 0, 0,
			map[string]any{"replica": idx, "node": uint32(node)})
		return node, nil
	}
	return 0, fmt.Errorf("core: all %d manager replicas unreachable", rt.cfg.ManagerReplicas)
}

// failover promotes home's warm standby and redirects the address book
// at it. Safe to call from any thread; concurrent callers for the same
// home serialize, and all but the first find the book already updated.
func (rt *Runtime) failover(home int) (scl.NodeID, error) {
	if !rt.standbyEnabled() {
		return 0, fmt.Errorf("core: home %d unreachable and no standby configured", home)
	}
	rt.failMu.Lock()
	defer rt.failMu.Unlock()
	standbyNode := firstStandbyNode + scl.NodeID(home)
	if rt.homeNode(home) == standbyNode {
		return standbyNode, nil // another caller already failed over
	}
	var ack proto.Ack
	if _, err := rt.failCtl.Call(standbyNode, &proto.Promote{}, &ack, 0); err != nil {
		return 0, fmt.Errorf("core: promoting standby for home %d: %w", home, err)
	}
	rt.homes[home].Store(int64(standbyNode))
	rt.cfg.Liveness.Live.Failovers.Add(1)
	rt.cfg.Trace.Span("runtime", trace.CatLive, "failover", 0, 0,
		map[string]any{"home": home, "node": uint32(standbyNode)})
	return standbyNode, nil
}

// Run implements vm.VM: it spawns p compute threads, registers them with
// the manager, executes body on each and gathers statistics.
func (rt *Runtime) Run(p int, body func(t vm.Thread)) (*stats.Run, error) {
	if p <= 0 {
		return nil, fmt.Errorf("core: need at least one thread, got %d", p)
	}
	threads := make([]*Thread, p)
	for i := 0; i < p; i++ {
		th, err := rt.newThread(i, p)
		if err != nil {
			return nil, err
		}
		threads[i] = th
	}
	// Register every thread before any body starts, so the manager's
	// notice-pruning horizon covers them all from the first release.
	for _, th := range threads {
		if err := th.register(); err != nil {
			return nil, fmt.Errorf("core: registering thread %d: %w", th.id, err)
		}
	}

	// Each thread gets a cache agent: a goroutine answering DiffPull
	// requests from homes while the thread computes (the runtime-side
	// helper thread of the real system). With liveness enabled each
	// thread also heartbeats from its own endpoint, so killing the
	// node silences the beats and the manager's lease table notices.
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	for _, th := range threads {
		rt.gate.Resume()
		go func(th *Thread) {
			defer rt.gate.Pause()
			th.agentLoop()
		}(th)
		if rt.livenessEnabled() {
			hbWG.Add(1)
			go rt.threadHeartbeat(th, hbStop, &hbWG)
		}
	}

	var (
		wg       sync.WaitGroup
		reg      stats.Registry
		panicMu  sync.Mutex
		panicked error
	)
	for _, th := range threads {
		wg.Add(1)
		rt.gate.Resume()
		go func(th *Thread) {
			defer wg.Done()
			defer rt.gate.Pause()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						if err, ok := r.(error); ok {
							panicked = fmt.Errorf("core: thread %d: %w", th.id, err)
						} else {
							panicked = fmt.Errorf("core: thread %d: %v", th.id, r)
						}
					}
					panicMu.Unlock()
				}
				th.finish()
				reg.Add(&th.st)
			}()
			body(th)
		}(th)
	}
	// The caller parks while the bodies run; on a sequenced fabric its
	// token must be released or delivery could stall with every thread
	// blocked on a pending message.
	rt.gate.Pause()
	wg.Wait()
	rt.gate.Resume()
	// Retire the threads in three phases. (1) Flush any still-retained
	// owned diffs so the homes become self-sufficient. (2) Drain every
	// memory server with a synchronous ping: each inbox is a FIFO, so
	// the ack proves all queued batches — whose processing may still
	// pull from the threads' cache agents — are done. (3) Only then
	// stop the heartbeats (each sends a goodbye so finished threads
	// leave the membership instead of timing out) and release the
	// endpoints, which stops the agents. Retirement failures of an
	// already-failed run must not mask the run's own error.
	for _, th := range threads {
		if err := th.flushOwned(); err != nil && panicked == nil {
			panicked = fmt.Errorf("core: thread %d: %w", th.id, err)
		}
	}
	if err := rt.drainServers(); err != nil && panicked == nil {
		panicked = err
	}
	close(hbStop)
	hbWG.Wait()
	for _, th := range threads {
		th.ep.Close()
	}
	if panicked != nil {
		return nil, panicked
	}
	return reg.Run(), nil
}

// threadHeartbeat posts one compute thread's membership beats until the
// run retires it, then posts a goodbye so the manager removes the
// member instead of declaring it dead. Beats stop on a terminal post
// failure — the thread's node was crash-killed — which is exactly what
// lets the lease table detect the death.
func (rt *Runtime) threadHeartbeat(th *Thread, stop chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	hb := &proto.Heartbeat{
		Member: th.writer,
		Class:  proto.MemberThread,
		Node:   uint32(firstThreadNode) + th.writer,
	}
	if err := rt.beat(th.ep, hb); err != nil {
		return
	}
	tick := time.NewTicker(rt.cfg.Liveness.HeartbeatEvery)
	defer tick.Stop()
	fails := 0
	for {
		select {
		case <-stop:
			bye := *hb
			bye.Bye = true
			th.ep.Post(rt.managerNode(), &bye, 0) // best-effort goodbye
			return
		case <-tick.C:
		}
		if !rt.beatOnce(th.ep, hb, &fails) {
			return
		}
	}
}

// newThread builds a thread handle placed on a compute node. The
// protocol writer id comes from a runtime-wide counter, never reused,
// so interval tags stay unique even when one Runtime executes several
// Run calls (each with thread ids restarting at zero).
func (rt *Runtime) newThread(id, p int) (*Thread, error) {
	seq := rt.nextThread.Add(1)
	ep, err := rt.newEndpoint(firstThreadNode + scl.NodeID(seq))
	if err != nil {
		return nil, fmt.Errorf("core: thread %d endpoint: %w", id, err)
	}
	th := &Thread{
		rt:    rt,
		id:    id,
		p:     p,
		node:  uint32(id / rt.cfg.ThreadsPerNode),
		ep:    ep,
		clock: vtime.NewClock(0),
	}
	th.st = stats.Thread{ID: id}
	th.writer = seq // writer 0 is reserved for "no writer"
	th.actor = fmt.Sprintf("thread %d", id)
	th.initCache()
	return th, nil
}

// drainServers round-trips a ping through every live home — following
// the address book, and failing over once if a primary died with
// batches we need drained (the promoted standby's inbox holds the
// replicated stream, so its ack is the drain).
func (rt *Runtime) drainServers() error {
	if rt.fabric != nil && rt.fabric.Sequenced() {
		// The ping idiom relies on FIFO inboxes; the sequenced fabric
		// delivers in virtual-arrival order, so a ping (cheap, early
		// arrival) would overtake the queued batches it is supposed to
		// prove drained. Wait for each home's stream to quiesce instead.
		for i := range rt.servers {
			// Sequenced servers process shard items inline on the
			// dispatcher, so a quiesced port means a fully drained
			// server regardless of shard count.
			rt.fabric.Quiesce(rt.homeNode(i))
		}
		return nil
	}
	ctl, err := rt.newEndpoint(firstThreadNode - 2 - scl.NodeID(rt.nextThread.Add(1)))
	if err != nil {
		return fmt.Errorf("core: drain endpoint: %w", err)
	}
	defer ctl.Close()
	for i := range rt.servers {
		var ack proto.Ack
		_, err := ctl.Call(rt.homeNode(i), &proto.Ping{}, &ack, 0)
		if err != nil && isPeerFailure(err) {
			if node, ferr := rt.failover(i); ferr == nil {
				_, err = ctl.Call(node, &proto.Ping{}, &ack, 0)
			}
		}
		if err != nil {
			return fmt.Errorf("core: draining memory server %d: %w", i, err)
		}
	}
	return nil
}

// NewMutex implements vm.VM. Lock state lives in the manager; the id is
// allocated here.
func (rt *Runtime) NewMutex() vm.Mutex { return &smhMutex{rt: rt, id: rt.nextSync.Add(1)} }

// NewBarrier implements vm.VM.
func (rt *Runtime) NewBarrier(n int) vm.Barrier {
	return &smhBarrier{rt: rt, id: rt.nextSync.Add(1), n: uint32(n)}
}

// NewCond implements vm.VM.
func (rt *Runtime) NewCond() vm.Cond { return &smhCond{rt: rt, id: rt.nextSync.Add(1)} }

// Close shuts the manager and memory servers (and any standbys) down.
// Components that already died a crash death — killed by a fault
// injector, declared dead by the lease table — are tolerated: their
// event loops have exited, so an undeliverable shutdown is expected.
func (rt *Runtime) Close() error {
	rt.closeOnce.Do(func() {
		if rt.hbStop != nil {
			close(rt.hbStop)
			rt.hbWG.Wait()
		}
		ctl, err := rt.newEndpoint(firstThreadNode - 1)
		if err != nil {
			rt.closeErr = err
			return
		}
		targets := []scl.NodeID{managerNode}
		for i := 1; i < len(rt.mgrs); i++ {
			targets = append(targets, MgrReplicaNode(i))
		}
		for i := range rt.servers {
			targets = append(targets, rt.serverNode(i))
		}
		for i := range rt.standbys {
			targets = append(targets, firstStandbyNode+scl.NodeID(i))
		}
		for _, dst := range targets {
			if _, err := ctl.Post(dst, &shutdownMsg, 0); err != nil && !isPeerFailure(err) && rt.closeErr == nil {
				rt.closeErr = err
			}
		}
		rt.gate.Pause()
		rt.wg.Wait()
		rt.gate.Resume()
		ctl.Close()
		if rt.failCtl != nil {
			rt.failCtl.Close()
		}
		if err := rt.transport.Close(); err != nil && rt.closeErr == nil {
			rt.closeErr = err
		}
		// Retire the caller token issued by New.
		rt.gate.Pause()
	})
	return rt.closeErr
}
