package proto

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, in, out Msg) {
	t.Helper()
	if in.Kind() != out.Kind() {
		t.Fatalf("kind mismatch: %v vs %v", in.Kind(), out.Kind())
	}
	body := Encode(in)
	if err := Decode(out, body); err != nil {
		t.Fatalf("%v: decode: %v", in.Kind(), err)
	}
	if !reflect.DeepEqual(normalize(in), normalize(out)) {
		t.Fatalf("%v: round trip mismatch:\n in: %#v\nout: %#v", in.Kind(), in, out)
	}
}

// normalize maps nil and empty slices to a comparable form by
// re-encoding; DeepEqual distinguishes nil from empty which the wire
// format does not.
func normalize(m Msg) string {
	return string(Encode(m))
}

func TestRoundTripAllMessages(t *testing.T) {
	msgs := []struct {
		in, out Msg
	}{
		{
			&FetchLineReq{Line: 7, Needs: []PageNeed{
				{Page: 28, Tags: []IntervalTag{{Writer: 1, Interval: 3}, {Writer: 2, Interval: 9}}},
				{Page: 29, Tags: nil},
			}},
			&FetchLineReq{},
		},
		{&FetchLineResp{Data: []byte{1, 2, 3, 0, 255}}, &FetchLineResp{}},
		{&DiffPullReq{Pages: []uint64{1, 2, 3}}, &DiffPullReq{}},
		{
			&DiffPullResp{Diffs: []PageDiff{{Page: 4, Runs: []DiffRun{{Off: 1, Data: []byte{5}}}}}},
			&DiffPullResp{},
		},
		{
			&DiffBatch{
				Tag: IntervalTag{Writer: 5, Interval: 11},
				Diffs: []PageDiff{
					{Page: 3, Runs: []DiffRun{{Off: 0, Data: []byte{9}}, {Off: 100, Data: []byte{1, 2}}}},
					{Page: 4, Runs: nil},
				},
				Records:    []StoreRecord{{Addr: 4096, Data: []byte{8, 7, 6, 5, 4, 3, 2, 1}}},
				EmptyPages: []uint64{77, 78},
				OwnedPages: []uint64{90, 91},
			},
			&DiffBatch{},
		},
		{
			&EvictFlush{Writer: 3, Diffs: []PageDiff{{Page: 1, Runs: []DiffRun{{Off: 4, Data: []byte{1}}}}}},
			&EvictFlush{},
		},
		{&AllocReq{Thread: 2, Size: 1 << 20, Align: 64, Strategy: AllocStriped}, &AllocReq{}},
		{&AllocResp{Addr: 1 << 33}, &AllocResp{}},
		{&FreeReq{Thread: 1, Addr: 12345}, &FreeReq{}},
		{&FreeReq{Thread: 1, Addr: 12345, Seq: 7, Unmapped: true}, &FreeReq{}},
		{&FreeResp{Fork: true, Snap: 3, NPages: 16, Release: []uint64{3, 9}}, &FreeResp{}},
		{&FreeResp{}, &FreeResp{}},
		{&ForkUnmap{Base: 1 << 20, NPages: 16, Release: []uint64{4}}, &ForkUnmap{}},
		{&ForkUnmap{Release: []uint64{5}}, &ForkUnmap{}},
		{&RegisterReq{Thread: 6, Node: 2}, &RegisterReq{}},
		{&LockReq{Lock: 9, Thread: 4, LastSeen: 77}, &LockReq{}},
		{
			&LockResp{Seq: 80, Notices: []Notice{{
				Seq: 78, Tag: IntervalTag{Writer: 1, Interval: 2},
				Pages:   []uint64{10, 11},
				Records: []StoreRecord{{Addr: 40960, Data: []byte{1, 2, 3, 4}}},
			}}},
			&LockResp{},
		},
		{
			&UnlockReq{Lock: 9, Thread: 4, Interval: 6, Pages: []uint64{1, 2, 3},
				Records: []StoreRecord{{Addr: 8, Data: []byte{0}}}},
			&UnlockReq{},
		},
		{
			&BarrierReq{Barrier: 1, Count: 16, Thread: 0, LastSeen: 5, Interval: 2, Pages: []uint64{9}},
			&BarrierReq{},
		},
		{&BarrierResp{Seq: 10, Notices: nil}, &BarrierResp{}},
		{
			&CondWaitReq{Cond: 2, Lock: 3, Thread: 1, LastSeen: 4, Interval: 5, Pages: []uint64{6}},
			&CondWaitReq{},
		},
		{&LockResp{Seq: 80, Gen: 3, Queued: true}, &LockResp{}},
		{
			&UnlockReq{Lock: 9, Thread: 4, Interval: 6, Pages: []uint64{1},
				Records: []StoreRecord{{Addr: 8, Data: []byte{0}}}, HandedOff: 12},
			&UnlockReq{},
		},
		{
			&NextWaiter{Lock: 5, Gen: 2, Seq: 90,
				Train: []SuccAnn{
					{Waiter: 7, WaiterNode: 107,
						Notices: []Notice{{Seq: 88, Tag: IntervalTag{Writer: 3, Interval: 4}, Pages: []uint64{12}}}},
					{Waiter: 9, WaiterNode: 109, Notices: []Notice{}},
				}},
			&NextWaiter{},
		},
		{
			&LockGrant{Lock: 5, Gen: 3, Seq: 91,
				Notices: []Notice{{Seq: 89, Tag: IntervalTag{Writer: 2, Interval: 8}}},
				Inline: []Notice{{Tag: IntervalTag{Writer: 6, Interval: 9},
					Pages:   []uint64{3, 4},
					Records: []StoreRecord{{Addr: 16, Data: []byte{1, 2, 3, 4}}}}},
				Train: []SuccAnn{{Waiter: 11, WaiterNode: 111, Notices: []Notice{}}},
				PageData: []PagePayload{
					{Page: 3, Data: []byte{9, 8, 7}},
					{Page: 4, Data: nil},
				}},
			&LockGrant{},
		},
		{&LockGrant{Lock: 5, Gen: 1, Code: CodeShutdown}, &LockGrant{}},
		{&CondWaitResp{Seq: 42}, &CondWaitResp{}},
		{&CondSignalReq{Cond: 2, Thread: 7, Broadcast: true}, &CondSignalReq{}},
		{&CondSignalReq{Cond: 2, Thread: 7, Broadcast: false}, &CondSignalReq{}},
		{&WriterDead{Writer: 9}, &WriterDead{}},
		{&Ack{}, &Ack{}},
		{&Ping{}, &Ping{}},
		{&Shutdown{}, &Shutdown{}},
		{&Error{Text: "boom"}, &Error{}},
	}
	for _, m := range msgs {
		roundTrip(t, m.in, m.out)
	}
}

// The handoff fields on LockResp and UnlockReq are trailing and omitted
// when zero: the classic encodings must stay byte-identical so a
// single-home manager produces exactly the pre-handoff wire traffic.
func TestHandoffFieldsOmittedWhenZero(t *testing.T) {
	var w Writer
	w.U64(7)
	marshalNotices(&w, nil)
	if got := Encode(&LockResp{Seq: 7}); !bytes.Equal(got, w.B) {
		t.Errorf("classic LockResp encoding changed: %v vs %v", got, w.B)
	}
	var u Writer
	u.U32(9)
	u.U32(4)
	u.U64(6)
	u.U64s(nil)
	marshalRecords(&u, nil)
	if got := Encode(&UnlockReq{Lock: 9, Thread: 4, Interval: 6}); !bytes.Equal(got, u.B) {
		t.Errorf("classic UnlockReq encoding changed: %v vs %v", got, u.B)
	}
}

func TestKindStrings(t *testing.T) {
	if KFetchLineReq.String() != "fetch-line-req" {
		t.Errorf("KFetchLineReq.String() = %q", KFetchLineReq.String())
	}
	if Kind(999).String() != "kind(999)" {
		t.Errorf("unknown kind = %q", Kind(999).String())
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := Encode(&DiffBatch{
		Tag:   IntervalTag{Writer: 1, Interval: 2},
		Diffs: []PageDiff{{Page: 3, Runs: []DiffRun{{Off: 1, Data: []byte{1, 2, 3}}}}},
	})
	for cut := 0; cut < len(full); cut++ {
		var out DiffBatch
		if err := Decode(&out, full[:cut]); err == nil {
			t.Fatalf("decoding %d/%d bytes succeeded unexpectedly", cut, len(full))
		}
	}
}

func TestDecodeHostileLengths(t *testing.T) {
	// A length prefix far larger than the buffer must fail cleanly, not
	// attempt a huge allocation.
	var w Writer
	w.U64(1 << 40) // claimed element count
	var out LockResp
	hostile := append([]byte{1}, w.B...) // Seq, then bogus notice count
	if err := Decode(&out, hostile); err == nil {
		t.Fatal("hostile length accepted")
	}
}

func TestPayloadByteAccounting(t *testing.T) {
	d := PageDiff{Page: 1, Runs: []DiffRun{{Off: 0, Data: make([]byte, 10)}, {Off: 50, Data: make([]byte, 5)}}}
	if got := d.PayloadBytes(); got != 15 {
		t.Errorf("PayloadBytes = %d, want 15", got)
	}
	recs := []StoreRecord{{Addr: 0, Data: make([]byte, 8)}, {Addr: 8, Data: make([]byte, 4)}}
	if got := RecordBytes(recs); got != 12 {
		t.Errorf("RecordBytes = %d, want 12", got)
	}
}

// Property: writer/reader primitives round-trip arbitrary values.
func TestPrimitiveRoundTripProperty(t *testing.T) {
	f := func(a uint64, b uint32, c int64, d []byte, e []uint64) bool {
		var w Writer
		w.U64(a)
		w.U32(b)
		w.I64(c)
		w.Bytes(d)
		w.U64s(e)
		r := Reader{B: w.B}
		if r.U64() != a || r.U32() != b || r.I64() != c {
			return false
		}
		if !bytes.Equal(r.Bytes(), d) {
			return false
		}
		got := r.U64s()
		if len(got) != len(e) {
			return false
		}
		for i := range e {
			if got[i] != e[i] {
				return false
			}
		}
		return r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: DiffBatch round-trips under random shapes.
func TestDiffBatchRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := DiffBatch{Tag: IntervalTag{Writer: rng.Uint32(), Interval: rng.Uint64() >> 1}}
		for i := 0; i < rng.Intn(4); i++ {
			pd := PageDiff{Page: rng.Uint64() >> 1}
			for j := 0; j < rng.Intn(4); j++ {
				data := make([]byte, rng.Intn(32))
				rng.Read(data)
				pd.Runs = append(pd.Runs, DiffRun{Off: uint32(rng.Intn(4096)), Data: data})
			}
			in.Diffs = append(in.Diffs, pd)
		}
		for i := 0; i < rng.Intn(3); i++ {
			data := make([]byte, 1+rng.Intn(16))
			rng.Read(data)
			in.Records = append(in.Records, StoreRecord{Addr: rng.Uint64() >> 1, Data: data})
		}
		var out DiffBatch
		if err := Decode(&out, Encode(&in)); err != nil {
			return false
		}
		return normalize(&in) == normalize(&out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------
// Combined-fetch (fetch combining) property tests.

// randomFetchLinesReq builds an arbitrarily shaped combined-fetch
// request from a seed.
func randomFetchLinesReq(rng *rand.Rand) *FetchLinesReq {
	in := &FetchLinesReq{}
	for i := 0; i < rng.Intn(5); i++ {
		in.Lines = append(in.Lines, rng.Uint64()>>1)
	}
	for i := 0; i < rng.Intn(5); i++ {
		in.Pages = append(in.Pages, rng.Uint64()>>1)
	}
	for i := 0; i < rng.Intn(4); i++ {
		need := PageNeed{Page: rng.Uint64() >> 1}
		for j := 0; j < rng.Intn(3); j++ {
			need.Tags = append(need.Tags, IntervalTag{
				Writer:   rng.Uint32(),
				Interval: rng.Uint64() >> 1,
			})
		}
		in.Needs = append(in.Needs, need)
	}
	return in
}

// Property: FetchLinesReq round-trips under random shapes, including
// empty line/page/need sets in any combination.
func TestFetchLinesReqRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomFetchLinesReq(rng)
		var out FetchLinesReq
		if err := Decode(&out, Encode(in)); err != nil {
			return false
		}
		return normalize(in) == normalize(&out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: FetchLinesResp round-trips arbitrary payloads (quick
// generates the byte slice directly).
func TestFetchLinesRespRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		in := &FetchLinesResp{Data: data}
		var out FetchLinesResp
		if err := Decode(&out, Encode(in)); err != nil {
			return false
		}
		return bytes.Equal(out.Data, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Zero values must encode and decode cleanly: a combined fetch with no
// lines, no pages and no needs is legal on the wire (the caller guards
// against sending it, but the codec must not).
func TestFetchLinesZeroValues(t *testing.T) {
	roundTrip(t, &FetchLinesReq{}, &FetchLinesReq{})
	roundTrip(t, &FetchLinesResp{}, &FetchLinesResp{})
}

// Property: every proper prefix of a valid combined-fetch encoding is
// rejected. Each field carries a length prefix, so a truncation either
// cuts a fixed-width integer short or leaves fewer bytes than the
// length promises; neither may decode silently (a short fetch body
// would install garbage pages).
func TestFetchLinesTruncationRejectedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		body := Encode(randomFetchLinesReq(rng))
		for n := 0; n < len(body); n++ {
			var out FetchLinesReq
			if err := Decode(&out, body[:n]); err == nil {
				t.Logf("seed %d: prefix %d/%d decoded silently", seed, n, len(body))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	// Same for the response: its payload is length-prefixed too.
	body := Encode(&FetchLinesResp{Data: []byte{1, 2, 3, 4, 5}})
	for n := 0; n < len(body); n++ {
		var out FetchLinesResp
		if err := Decode(&out, body[:n]); err == nil {
			t.Fatalf("response prefix %d/%d decoded silently", n, len(body))
		}
	}
}

// Span-extent words: tagged (bit 63) values that ride a Notice's Pages
// list after the page word they qualify. Pack/decode must round-trip
// every in-range (off, n), the tag must never collide with a real page
// id, and NoticePages must count only the plain words.
func TestSpanExtentRoundTrip(t *testing.T) {
	cases := []struct{ off, n int }{
		{0, 1}, {0, 4096}, {4095, 1}, {16, 8}, {1<<31 - 1, 1 << 31},
	}
	for _, c := range cases {
		w := PackSpanExtent(c.off, c.n)
		if !IsSpanExtent(w) {
			t.Fatalf("PackSpanExtent(%d,%d) not tagged", c.off, c.n)
		}
		off, n := SpanExtent(w)
		if off != c.off || n != c.n {
			t.Fatalf("round trip (%d,%d) -> (%d,%d)", c.off, c.n, off, n)
		}
	}
	// Page ids never look like extents (bit 63 is out of reach of any
	// real address space the runtime configures).
	for _, p := range []uint64{0, 1, 1 << 40, 1<<63 - 1} {
		if IsSpanExtent(p) {
			t.Fatalf("page id %#x misread as extent", p)
		}
	}
	pages := []uint64{7, PackSpanExtent(0, 8), PackSpanExtent(100, 4), 9}
	if got := NoticePages(pages); got != 2 {
		t.Fatalf("NoticePages = %d, want 2", got)
	}
	// Extent words survive the wire inside a Notice untouched.
	in := &BarrierResp{Notices: []Notice{{
		Seq: 3, Tag: IntervalTag{Writer: 1, Interval: 2}, Pages: pages,
	}}}
	roundTrip(t, in, &BarrierResp{})
}
