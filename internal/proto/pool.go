package proto

import "sync"

// Payload buffer pool. The memory-server hot path assembles a reply
// payload (up to a whole cache line plus pages), hands it to a message
// whose Marshal copies it into the wire frame, and then has no further
// use for it — a steady stream of large, short-lived allocations.
// GetBuf/PutBuf recycle those buffers through size-classed sync.Pools.
//
// Ownership rule: the producer that GetBufs a buffer owns it until it
// explicitly PutBufs it back, and must only do so once nothing aliases
// the buffer any more. Encode and Marshal always copy payload bytes
// into their own frame, so "after Reply returns" is a safe release
// point for a reply payload. Buffers decoded with DecodeAlias are the
// opposite case — they alias a wire body the pool never owns and must
// never be PutBuf'd.

// poolMinShift..poolMaxShift bound the size classes (4 KiB .. 1 MiB);
// requests outside the range fall back to the garbage collector.
const (
	poolMinShift = 12
	poolMaxShift = 20
)

var bufPools [poolMaxShift - poolMinShift + 1]sync.Pool

// classOf returns the pool index whose buffers hold at least n bytes,
// or -1 when n is outside the pooled range.
func classOf(n int) int {
	if n <= 0 || n > 1<<poolMaxShift {
		return -1
	}
	c := 0
	for n > 1<<(poolMinShift+c) {
		c++
	}
	return c
}

// GetBuf returns a zero-length buffer with capacity at least n. The
// contents of the backing array are unspecified; callers append or
// slice-and-overwrite.
func GetBuf(n int) []byte {
	c := classOf(n)
	if c < 0 {
		return make([]byte, 0, n)
	}
	if v := bufPools[c].Get(); v != nil {
		return (*v.(*[]byte))[:0]
	}
	return make([]byte, 0, 1<<(poolMinShift+c))
}

// PutBuf returns a buffer obtained from GetBuf to its pool. The caller
// must not touch the buffer afterwards. Foreign buffers of unpooled
// sizes are dropped silently.
func PutBuf(b []byte) {
	if b == nil {
		return
	}
	c := classOf(cap(b))
	if c < 0 || cap(b) != 1<<(poolMinShift+c) {
		return // not one of ours; let the GC have it
	}
	b = b[:0]
	bufPools[c].Put(&b)
}
