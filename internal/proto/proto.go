// Package proto defines the wire protocol spoken between Samhita
// components: compute threads, memory servers and the manager. Every
// message has a compact binary encoding so that (a) the virtual-time
// cost model can charge transfer time for the exact number of bytes a
// real implementation would move, and (b) the Samhita Communication
// Layer (package scl) can run the identical protocol over an in-process
// simulated fabric or a real network transport.
//
// The protocol implements regional consistency (RegC) in a home-based,
// lazy-release style:
//
//   - Every page has a home memory server. Compute threads fetch
//     multi-page cache lines from homes on demand (FetchLine).
//   - At a release point (unlock, barrier arrival, condition wait) a
//     thread ships a DiffBatch — the byte diffs of pages it dirtied in
//     ordinary regions plus the fine-grained store records it logged in
//     consistency regions — to the homes, tagged with the thread's
//     interval number, and then posts a write notice to the manager.
//   - At an acquire point the manager returns the write notices the
//     thread has not yet seen; the thread invalidates pages named by
//     ordinary-region notices and applies fine-grained records in place.
//   - A later fetch of an invalidated page quotes the interval tags it
//     needs; the home delays the reply until those DiffBatches have been
//     applied, which restores causality without any blocking at release
//     time.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Kind identifies a message type.
type Kind uint16

// Message kinds. Requests and responses are paired; one-way messages
// (DiffBatch, EvictFlush) are acknowledged at the transport level only.
const (
	KInvalid Kind = iota

	// Memory-server messages.
	KFetchLineReq
	KFetchLineResp
	KDiffBatch  // one-way: release-time diffs + records
	KEvictFlush // one-way: mid-interval flush of an evicted dirty page

	// Home-to-writer messages (lazy single-writer diffs).
	KDiffPullReq
	KDiffPullResp

	// Manager messages: allocation and placement.
	KAllocReq
	KAllocResp
	KFreeReq
	KRegisterReq

	// Manager messages: synchronization.
	KLockReq
	KLockResp
	KUnlockReq
	KBarrierReq
	KBarrierResp
	KCondWaitReq
	KCondWaitResp
	KCondSignalReq

	// Generic.
	KAck
	KPing
	KShutdown
	KError

	// Liveness messages.
	KHeartbeat // one-way: membership lease renewal (or graceful goodbye)
	KPromote   // promote a warm-standby memory server to primary

	// Combined multi-line fetch (fetch combining: one request for every
	// line an acquire invalidated on the same home).
	KFetchLinesReq
	KFetchLinesResp

	// Peer-to-peer lock handoff (sharded manager): the manager names the
	// next waiter to the holder, and the holder forwards the grant.
	KNextWaiter // one-way: manager -> holder, successor + notice batch
	KLockGrant  // one-way: holder (or manager fallback) -> waiter

	// Liveness: writer obituary, manager -> every memory server and
	// standby when a thread's lease is reaped.
	KWriterDead // one-way: the writer's unshipped diffs will never arrive

	// Replicated manager (consensus log). The leader drives every
	// mutation through an append/ack round with its follower replicas
	// before applying it; a follower that falls below the truncated log
	// prefix is caught up with a full-state snapshot.
	KReplAppend   // leader -> follower: log entries (or an empty lease renewal)
	KReplAck      // follower -> leader: accept/reject + expected next index
	KPromoteMgr   // promote a follower manager replica to leader
	KReplSnapshot // leader -> follower: full-state snapshot install
	KReclaimEvent // log-entry only: a lease reap, replicated before it is acted on

	// Snapshot/fork of a global address space. SnapshotAS seals the
	// current page versions of a striped range behind a refcounted
	// snapshot id; ForkAS allocates a congruent range served from the
	// sealed frames until first write (copy-on-write).
	KSnapshotASReq
	KSnapshotASResp
	KForkASReq
	KForkASResp
	KSealAS // thread -> memory server: capture current frames for a snapshot
	KForkMap // thread -> memory server: map a forked range onto sealed frames

	// Snapshot/fork teardown. FreeResp (the FreeReq answer) reports when
	// the freed address was a fork range — the zone space is withheld
	// until the caller unmaps the range at the homes and commits with a
	// second, Unmapped FreeReq — and names the snapshots whose refcount
	// reached zero; ForkUnmap removes a fork range's mapping (and the
	// named snapshots' sealed frames) from a home server.
	KFreeResp
	KForkUnmap // thread -> memory server: drop a fork mapping / sealed frames
)

var kindNames = map[Kind]string{
	KInvalid:        "invalid",
	KFetchLineReq:   "fetch-line-req",
	KFetchLineResp:  "fetch-line-resp",
	KDiffBatch:      "diff-batch",
	KEvictFlush:     "evict-flush",
	KDiffPullReq:    "diff-pull-req",
	KDiffPullResp:   "diff-pull-resp",
	KAllocReq:       "alloc-req",
	KAllocResp:      "alloc-resp",
	KFreeReq:        "free-req",
	KRegisterReq:    "register-req",
	KLockReq:        "lock-req",
	KLockResp:       "lock-resp",
	KUnlockReq:      "unlock-req",
	KBarrierReq:     "barrier-req",
	KBarrierResp:    "barrier-resp",
	KCondWaitReq:    "cond-wait-req",
	KCondWaitResp:   "cond-wait-resp",
	KCondSignalReq:  "cond-signal-req",
	KAck:            "ack",
	KPing:           "ping",
	KShutdown:       "shutdown",
	KError:          "error",
	KHeartbeat:      "heartbeat",
	KPromote:        "promote",
	KFetchLinesReq:  "fetch-lines-req",
	KFetchLinesResp: "fetch-lines-resp",
	KNextWaiter:     "next-waiter",
	KLockGrant:      "lock-grant",
	KWriterDead:     "writer-dead",
	KReplAppend:     "repl-append",
	KReplAck:        "repl-ack",
	KPromoteMgr:     "promote-mgr",
	KReplSnapshot:   "repl-snapshot",
	KReclaimEvent:   "reclaim-event",
	KSnapshotASReq:  "snapshot-as-req",
	KSnapshotASResp: "snapshot-as-resp",
	KForkASReq:      "fork-as-req",
	KForkASResp:     "fork-as-resp",
	KSealAS:         "seal-as",
	KForkMap:        "fork-map",
	KFreeResp:       "free-resp",
	KForkUnmap:      "fork-unmap",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint16(k))
}

// ErrTruncated is returned when a message body ends before decoding
// finishes.
var ErrTruncated = errors.New("proto: truncated message")

// Writer appends binary fields to a buffer. Integers use unsigned
// varints; byte strings are length-prefixed.
type Writer struct {
	B []byte
}

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.B = append(w.B, v) }

// U32 appends a varint-encoded uint32.
func (w *Writer) U32(v uint32) { w.U64(uint64(v)) }

// U64 appends a varint-encoded uint64.
func (w *Writer) U64(v uint64) { w.B = binary.AppendUvarint(w.B, v) }

// I64 appends a zigzag varint-encoded int64.
func (w *Writer) I64(v int64) { w.B = binary.AppendVarint(w.B, v) }

// Bytes appends a length-prefixed byte string.
func (w *Writer) Bytes(p []byte) {
	w.U64(uint64(len(p)))
	w.B = append(w.B, p...)
}

// U64s appends a length-prefixed slice of uint64.
func (w *Writer) U64s(vs []uint64) {
	w.U64(uint64(len(vs)))
	for _, v := range vs {
		w.U64(v)
	}
}

// Reader consumes binary fields from a buffer. The first decoding error
// sticks; callers check Err once at the end.
type Reader struct {
	B   []byte
	off int
	err error
	// noCopy lets retain return aliases into B instead of copies; set
	// only by DecodeAlias, whose callers own B for the aliases' lifetime.
	noCopy bool
}

// Err reports the first error encountered while decoding.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if r.err != nil || r.off >= len(r.B) {
		r.fail()
		return 0
	}
	v := r.B[r.off]
	r.off++
	return v
}

// U64 reads a varint-encoded uint64.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.B[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// U32 reads a varint-encoded uint32.
func (r *Reader) U32() uint32 {
	v := r.U64()
	if v > 0xFFFFFFFF {
		r.fail()
		return 0
	}
	return uint32(v)
}

// I64 reads a zigzag varint-encoded int64.
func (r *Reader) I64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.B[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Bytes reads a length-prefixed byte string. The returned slice aliases
// the input buffer.
func (r *Reader) Bytes() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if uint64(len(r.B)-r.off) < n {
		r.fail()
		return nil
	}
	p := r.B[r.off : r.off+int(n)]
	r.off += int(n)
	return p
}

// U64s reads a length-prefixed slice of uint64.
func (r *Reader) U64s() []uint64 {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.B)-r.off) { // each element is at least one byte
		r.fail()
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.U64()
	}
	return out
}

// retain is what payload-carrying Unmarshals apply to a Bytes() result
// they store: a copy by default (the wire buffer's lifetime is not
// theirs), the alias itself under DecodeAlias.
func (r *Reader) retain(p []byte) []byte {
	if r.noCopy || p == nil {
		return p
	}
	return append([]byte(nil), p...)
}

// Remaining reports how many undecoded bytes are left.
func (r *Reader) Remaining() int { return len(r.B) - r.off }
