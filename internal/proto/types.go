package proto

import "errors"

// Msg is implemented by every protocol message body.
type Msg interface {
	// Kind identifies the message type on the wire.
	Kind() Kind
	// Marshal appends the body encoding to w.
	Marshal(w *Writer)
	// Unmarshal decodes the body from r.
	Unmarshal(r *Reader)
}

// Encode serializes m (body only; the transport frames it).
func Encode(m Msg) []byte {
	var w Writer
	m.Marshal(&w)
	return w.B
}

// Decode fills m from body, returning any decoding error.
func Decode(m Msg, body []byte) error {
	r := Reader{B: body}
	m.Unmarshal(&r)
	return r.Err()
}

// DecodeAlias fills m from body like Decode, but byte payloads (diff
// runs, store records) alias body instead of being copied. The caller
// must keep body alive and unmodified for as long as it uses m — the
// memory-server diff path qualifies, because applying a diff copies its
// runs into pages and re-encoding for replication copies them again.
func DecodeAlias(m Msg, body []byte) error {
	r := Reader{B: body, noCopy: true}
	m.Unmarshal(&r)
	return r.Err()
}

// IntervalTag identifies one release interval of one writer. Interval
// numbers are assigned locally by each thread (monotonically increasing),
// so a thread can ship its DiffBatch to the homes *before* telling the
// manager about the release — the tag, not a manager-issued sequence
// number, is what fetchers wait on.
type IntervalTag struct {
	Writer   uint32
	Interval uint64
}

func (t IntervalTag) marshal(w *Writer) {
	w.U32(t.Writer)
	w.U64(t.Interval)
}

func (t *IntervalTag) unmarshal(r *Reader) {
	t.Writer = r.U32()
	t.Interval = r.U64()
}

// DiffRun is one maximal run of changed bytes within a page.
type DiffRun struct {
	Off  uint32 // byte offset within the page
	Data []byte // new contents
}

// PageDiff is the set of changed byte runs of one page, computed by
// comparing the dirty page against its twin.
type PageDiff struct {
	Page uint64
	Runs []DiffRun
}

func (d *PageDiff) marshal(w *Writer) {
	w.U64(d.Page)
	w.U64(uint64(len(d.Runs)))
	for i := range d.Runs {
		w.U32(d.Runs[i].Off)
		w.Bytes(d.Runs[i].Data)
	}
}

func (d *PageDiff) unmarshal(r *Reader) {
	d.Page = r.U64()
	n := r.U64()
	if r.Err() != nil || n > uint64(r.Remaining()) {
		r.fail()
		return
	}
	d.Runs = make([]DiffRun, n)
	for i := range d.Runs {
		d.Runs[i].Off = r.U32()
		d.Runs[i].Data = r.retain(r.Bytes())
	}
}

// PayloadBytes reports the number of data bytes carried by the diff.
func (d *PageDiff) PayloadBytes() int {
	n := 0
	for i := range d.Runs {
		n += len(d.Runs[i].Data)
	}
	return n
}

// StoreRecord is one instrumented store performed inside a consistency
// region: absolute global address plus the stored bytes. These are the
// paper's "fine grain (data object level) updates".
type StoreRecord struct {
	Addr uint64
	Data []byte
}

func marshalRecords(w *Writer, recs []StoreRecord) {
	w.U64(uint64(len(recs)))
	for i := range recs {
		w.U64(recs[i].Addr)
		w.Bytes(recs[i].Data)
	}
}

func unmarshalRecords(r *Reader) []StoreRecord {
	n := r.U64()
	if r.Err() != nil || n > uint64(r.Remaining()) {
		r.fail()
		return nil
	}
	recs := make([]StoreRecord, n)
	for i := range recs {
		recs[i].Addr = r.U64()
		recs[i].Data = r.retain(r.Bytes())
	}
	return recs
}

// RecordBytes sums the payload bytes of a record list.
func RecordBytes(recs []StoreRecord) int {
	n := 0
	for i := range recs {
		n += len(recs[i].Data)
	}
	return n
}

// Span-extent words. A release whose ordinary-region stores all went
// through the span data plane knows exactly which byte ranges of each
// dirtied page changed, and publishes them in the write notice so
// acquirers can invalidate only those ranges (partial staleness)
// instead of the whole page. The extents ride the existing Pages list
// as tagged extra words — bit 63 set, which no real page id reaches —
// immediately after the plain page word they qualify, so the wire
// format, the manager (which stores Pages verbatim in its notice
// directory), and every pre-span receiver are untouched: an old-style
// release simply emits no extent words and an extent-unaware reader
// must treat the page as fully invalid.
const spanExtentBit = uint64(1) << 63

// PackSpanExtent encodes a changed byte range [off, off+n) of the
// preceding page word. off is limited to 31 bits and n to 32 (a page is
// 4 KiB; the headroom is deliberate).
func PackSpanExtent(off, n int) uint64 {
	return spanExtentBit | uint64(off)<<32 | uint64(uint32(n))
}

// IsSpanExtent reports whether a Pages word is an extent word rather
// than a page id.
func IsSpanExtent(w uint64) bool { return w&spanExtentBit != 0 }

// SpanExtent decodes an extent word.
func SpanExtent(w uint64) (off, n int) {
	return int((w &^ spanExtentBit) >> 32), int(uint32(w))
}

// NoticePages counts the plain page words of a Pages list, skipping
// extent words (for display and bookkeeping, not protocol logic).
func NoticePages(pages []uint64) int {
	n := 0
	for _, w := range pages {
		if !IsSpanExtent(w) {
			n++
		}
	}
	return n
}

// Notice is a write notice distributed by the manager at acquire points.
// Pages names pages dirtied in ordinary regions (the receiver must
// invalidate any cached copy); Records carries consistency-region stores
// (the receiver applies them in place — no invalidation, no refetch).
// Pages may carry span-extent words (see PackSpanExtent) after a page
// word, narrowing that page's invalidation to the listed byte ranges.
type Notice struct {
	Seq     uint64 // manager-issued global sequence number
	Tag     IntervalTag
	Pages   []uint64
	Records []StoreRecord
}

func (n *Notice) marshal(w *Writer) {
	w.U64(n.Seq)
	n.Tag.marshal(w)
	w.U64s(n.Pages)
	marshalRecords(w, n.Records)
}

func (n *Notice) unmarshal(r *Reader) {
	n.Seq = r.U64()
	n.Tag.unmarshal(r)
	n.Pages = r.U64s()
	n.Records = unmarshalRecords(r)
}

func marshalNotices(w *Writer, ns []Notice) {
	w.U64(uint64(len(ns)))
	for i := range ns {
		ns[i].marshal(w)
	}
}

func unmarshalNotices(r *Reader) []Notice {
	n := r.U64()
	if r.Err() != nil || n > uint64(r.Remaining()) {
		r.fail()
		return nil
	}
	ns := make([]Notice, n)
	for i := range ns {
		ns[i].unmarshal(r)
	}
	return ns
}

// MarshalNotices appends a notice list to w. Exported for the manager's
// replication snapshot, which serializes the notice directory outside
// any wire message.
func MarshalNotices(w *Writer, ns []Notice) { marshalNotices(w, ns) }

// UnmarshalNotices reads a notice list written by MarshalNotices.
func UnmarshalNotices(r *Reader) []Notice { return unmarshalNotices(r) }

// ---------------------------------------------------------------------
// Memory-server messages.

// PageNeed lists the interval tags whose diffs must be applied to a page
// before the home may serve it.
type PageNeed struct {
	Page uint64
	Tags []IntervalTag
}

// FetchLineReq asks a home server for one cache line (LinePages
// consecutive pages, all homed on that server).
type FetchLineReq struct {
	Line  uint64
	Needs []PageNeed
}

func (m *FetchLineReq) Kind() Kind { return KFetchLineReq }

func (m *FetchLineReq) Marshal(w *Writer) {
	w.U64(m.Line)
	marshalNeeds(w, m.Needs)
}

func (m *FetchLineReq) Unmarshal(r *Reader) {
	m.Line = r.U64()
	m.Needs = unmarshalNeeds(r)
}

func marshalNeeds(w *Writer, needs []PageNeed) {
	w.U64(uint64(len(needs)))
	for i := range needs {
		w.U64(needs[i].Page)
		w.U64(uint64(len(needs[i].Tags)))
		for j := range needs[i].Tags {
			needs[i].Tags[j].marshal(w)
		}
	}
}

func unmarshalNeeds(r *Reader) []PageNeed {
	n := r.U64()
	if r.Err() != nil || n > uint64(r.Remaining()) {
		r.fail()
		return nil
	}
	needs := make([]PageNeed, n)
	for i := range needs {
		needs[i].Page = r.U64()
		k := r.U64()
		if r.Err() != nil || k > uint64(r.Remaining()) {
			r.fail()
			return nil
		}
		needs[i].Tags = make([]IntervalTag, k)
		for j := range needs[i].Tags {
			needs[i].Tags[j].unmarshal(r)
		}
	}
	return needs
}

// FetchLineResp carries the line contents.
type FetchLineResp struct {
	Data []byte
}

func (m *FetchLineResp) Kind() Kind          { return KFetchLineResp }
func (m *FetchLineResp) Marshal(w *Writer)   { w.Bytes(m.Data) }
func (m *FetchLineResp) Unmarshal(r *Reader) { m.Data = append([]byte(nil), r.Bytes()...) }

// FetchLinesReq asks a home server for several cache lines and/or
// individual pages at once — fetch combining: an acquire that
// invalidated K pages homed on one server issues a single combined
// request instead of K misses. Lines names whole cache lines (cold
// misses); Pages names single pages whose lines the fetcher already
// holds, so revalidating them moves one page, not a whole line. Needs
// quotes the union of the outstanding interval tags across everything
// requested; the home answers once every quoted tag's DiffBatch has
// been applied.
type FetchLinesReq struct {
	Lines []uint64
	Pages []uint64
	Needs []PageNeed
}

func (m *FetchLinesReq) Kind() Kind { return KFetchLinesReq }

func (m *FetchLinesReq) Marshal(w *Writer) {
	w.U64s(m.Lines)
	w.U64s(m.Pages)
	marshalNeeds(w, m.Needs)
}

func (m *FetchLinesReq) Unmarshal(r *Reader) {
	m.Lines = r.U64s()
	m.Pages = r.U64s()
	m.Needs = unmarshalNeeds(r)
}

// FetchLinesResp carries the contents of every requested line, then
// every requested page, concatenated in request order.
type FetchLinesResp struct {
	Data []byte
}

func (m *FetchLinesResp) Kind() Kind          { return KFetchLinesResp }
func (m *FetchLinesResp) Marshal(w *Writer)   { w.Bytes(m.Data) }
func (m *FetchLinesResp) Unmarshal(r *Reader) { m.Data = append([]byte(nil), r.Bytes()...) }

// DiffBatch carries one interval's worth of updates to one home server:
// page diffs from ordinary regions (shared pages, shipped eagerly),
// store records from consistency regions, the ids of dirty pages whose
// bytes were already flushed by eviction (EmptyPages), and ownership
// claims for pages whose diffs stay with the writer until someone needs
// them (OwnedPages — the single-writer optimization: unshared pages
// cost a release no bytes, and the home pulls their diffs on demand).
// One-way; sent before the release is announced to the manager.
type DiffBatch struct {
	Tag        IntervalTag
	Diffs      []PageDiff
	Records    []StoreRecord
	EmptyPages []uint64
	OwnedPages []uint64
}

func (m *DiffBatch) Kind() Kind { return KDiffBatch }

func (m *DiffBatch) Marshal(w *Writer) {
	m.Tag.marshal(w)
	w.U64(uint64(len(m.Diffs)))
	for i := range m.Diffs {
		m.Diffs[i].marshal(w)
	}
	marshalRecords(w, m.Records)
	w.U64s(m.EmptyPages)
	w.U64s(m.OwnedPages)
}

func (m *DiffBatch) Unmarshal(r *Reader) {
	m.Tag.unmarshal(r)
	n := r.U64()
	if r.Err() != nil || n > uint64(r.Remaining()) {
		r.fail()
		return
	}
	m.Diffs = make([]PageDiff, n)
	for i := range m.Diffs {
		m.Diffs[i].unmarshal(r)
	}
	m.Records = unmarshalRecords(r)
	m.EmptyPages = r.U64s()
	m.OwnedPages = r.U64s()
}

// DiffPullReq asks a writer's cache agent for the retained diffs of
// lazily-owned pages (sent by a home server when another thread fetches
// them).
type DiffPullReq struct {
	Pages []uint64
}

func (m *DiffPullReq) Kind() Kind          { return KDiffPullReq }
func (m *DiffPullReq) Marshal(w *Writer)   { w.U64s(m.Pages) }
func (m *DiffPullReq) Unmarshal(r *Reader) { m.Pages = r.U64s() }

// DiffPullResp returns the retained diffs. A page missing from Diffs
// has no retained data (it was flushed or never owned); the home treats
// its own copy as current.
type DiffPullResp struct {
	Diffs []PageDiff
}

func (m *DiffPullResp) Kind() Kind { return KDiffPullResp }

func (m *DiffPullResp) Marshal(w *Writer) {
	w.U64(uint64(len(m.Diffs)))
	for i := range m.Diffs {
		m.Diffs[i].marshal(w)
	}
}

func (m *DiffPullResp) Unmarshal(r *Reader) {
	n := r.U64()
	if r.Err() != nil || n > uint64(r.Remaining()) {
		r.fail()
		return
	}
	m.Diffs = make([]PageDiff, n)
	for i := range m.Diffs {
		m.Diffs[i].unmarshal(r)
	}
}

// EvictFlush carries the diff of a dirty page evicted mid-interval. The
// home applies it immediately; the owning interval's later DiffBatch
// lists the page in EmptyPages.
type EvictFlush struct {
	Writer uint32
	Diffs  []PageDiff
}

func (m *EvictFlush) Kind() Kind { return KEvictFlush }

func (m *EvictFlush) Marshal(w *Writer) {
	w.U32(m.Writer)
	w.U64(uint64(len(m.Diffs)))
	for i := range m.Diffs {
		m.Diffs[i].marshal(w)
	}
}

func (m *EvictFlush) Unmarshal(r *Reader) {
	m.Writer = r.U32()
	n := r.U64()
	if r.Err() != nil || n > uint64(r.Remaining()) {
		r.fail()
		return
	}
	m.Diffs = make([]PageDiff, n)
	for i := range m.Diffs {
		m.Diffs[i].unmarshal(r)
	}
}

// ---------------------------------------------------------------------
// Manager messages.

// Allocation strategies (Section II: three strategies chosen by size).
const (
	AllocArenaChunk uint8 = iota // a chunk for a thread-local arena
	AllocShared                  // from the manager's shared zone
	AllocStriped                 // striped across memory servers
)

// AllocReq asks the manager for global memory. Seq is the requesting
// thread's monotonic allocation-plane sequence number: a re-issue of
// the same logical request (a retry across manager failover) carries
// the same Seq, which lets the manager deduplicate and answer with the
// original address instead of allocating again — the fix for the
// AllocReq re-issue leak. Seq 0 disables dedup (legacy senders).
type AllocReq struct {
	Thread   uint32
	Size     uint64
	Align    uint32
	Strategy uint8
	Seq      uint64
}

func (m *AllocReq) Kind() Kind { return KAllocReq }

func (m *AllocReq) Marshal(w *Writer) {
	w.U32(m.Thread)
	w.U64(m.Size)
	w.U32(m.Align)
	w.U8(m.Strategy)
	w.U64(m.Seq)
}

func (m *AllocReq) Unmarshal(r *Reader) {
	m.Thread = r.U32()
	m.Size = r.U64()
	m.Align = r.U32()
	m.Strategy = r.U8()
	m.Seq = r.U64()
}

// AllocResp returns the base address of the allocation.
type AllocResp struct {
	Addr uint64
}

func (m *AllocResp) Kind() Kind          { return KAllocResp }
func (m *AllocResp) Marshal(w *Writer)   { w.U64(m.Addr) }
func (m *AllocResp) Unmarshal(r *Reader) { m.Addr = r.U64() }

// RegisterReq announces a compute thread to the manager before it runs
// (the manager is responsible for thread placement, Section II). A
// registered thread holds back write-notice pruning until it has seen
// each notice, which closes the window where a late-starting thread
// could miss releases that happened before its first acquire.
type RegisterReq struct {
	Thread uint32
	Node   uint32 // compute node the thread is placed on
}

func (m *RegisterReq) Kind() Kind { return KRegisterReq }

func (m *RegisterReq) Marshal(w *Writer) {
	w.U32(m.Thread)
	w.U32(m.Node)
}

func (m *RegisterReq) Unmarshal(r *Reader) {
	m.Thread = r.U32()
	m.Node = r.U32()
}

// FreeReq releases an allocation made through the manager. Seq is the
// same allocation-plane sequence number AllocReq carries: a free
// re-issued across failover is acked idempotently instead of
// double-freeing (Seq 0 disables dedup).
//
// Freeing a forked range is two-phase: the first FreeReq drops the
// manager's fork bookkeeping but withholds the zone space (the reply
// carries the range geometry), the caller unmaps the range at every
// home with ForkUnmap, and a second FreeReq with Unmapped set commits
// the space back to the zone. Without the barrier, first-fit reuse of
// the range would race the homes' stale fork mappings.
type FreeReq struct {
	Thread   uint32
	Addr     uint64
	Seq      uint64
	Unmapped bool
}

func (m *FreeReq) Kind() Kind { return KFreeReq }

func (m *FreeReq) Marshal(w *Writer) {
	w.U32(m.Thread)
	w.U64(m.Addr)
	w.U64(m.Seq)
	if m.Unmapped {
		w.U8(1)
	}
}

func (m *FreeReq) Unmarshal(r *Reader) {
	m.Thread = r.U32()
	m.Addr = r.U64()
	m.Seq = r.U64()
	m.Unmapped = r.Err() == nil && r.Remaining() > 0 && r.U8() != 0
}

// FreeResp answers a FreeReq. For an ordinary free every field is
// zero. Fork set marks phase one of freeing a fork range: Snap and
// NPages describe the mapping the caller must remove from the homes
// (ForkUnmap) before committing with an Unmapped FreeReq. Release
// names snapshots whose refcount reached zero — either the freed
// fork's parent losing its last fork, or (on an ordinary free of a
// snapshotted image, which drops each snapshot's handle reference)
// snapshots with no remaining forks; the caller tells the homes to
// drop their sealed frames. NPages then sizes the released frames'
// home range.
type FreeResp struct {
	Fork    bool
	Snap    uint64
	NPages  uint64
	Release []uint64
}

func (m *FreeResp) Kind() Kind { return KFreeResp }

func (m *FreeResp) Marshal(w *Writer) {
	if m.Fork {
		w.U8(1)
	} else {
		w.U8(0)
	}
	w.U64(m.Snap)
	w.U64(m.NPages)
	w.U64s(m.Release)
}

func (m *FreeResp) Unmarshal(r *Reader) {
	m.Fork = r.U8() != 0
	m.Snap = r.U64()
	m.NPages = r.U64()
	m.Release = r.U64s()
}

// LockReq acquires a mutex. LastSeen is the highest notice sequence the
// thread has already processed; the response carries everything newer.
type LockReq struct {
	Lock     uint32
	Thread   uint32
	LastSeen uint64
}

func (m *LockReq) Kind() Kind { return KLockReq }

func (m *LockReq) Marshal(w *Writer) {
	w.U32(m.Lock)
	w.U32(m.Thread)
	w.U64(m.LastSeen)
}

func (m *LockReq) Unmarshal(r *Reader) {
	m.Lock = r.U32()
	m.Thread = r.U32()
	m.LastSeen = r.U64()
}

// LockResp grants the mutex. Seq is the new LastSeen.
//
// With peer-to-peer handoff enabled (sharded manager on a sequenced
// fabric) the manager answers a contended acquire immediately with
// Queued set instead of parking the RPC; the grant then arrives later
// as a one-way LockGrant. Gen identifies the holder's tenure so stale
// NextWaiter messages can be recognized. Both fields are trailing and
// omitted when zero, keeping the classic wire encoding bit-identical.
type LockResp struct {
	Seq     uint64
	Notices []Notice
	Gen     uint64 // holder tenure number (0 in classic mode)
	Queued  bool   // true: no grant yet, wait for LockGrant
}

func (m *LockResp) Kind() Kind { return KLockResp }

func (m *LockResp) Marshal(w *Writer) {
	w.U64(m.Seq)
	marshalNotices(w, m.Notices)
	if m.Gen != 0 || m.Queued {
		w.U64(m.Gen)
		if m.Queued {
			w.U8(1)
		} else {
			w.U8(0)
		}
	}
}

func (m *LockResp) Unmarshal(r *Reader) {
	m.Seq = r.U64()
	m.Notices = unmarshalNotices(r)
	if r.Err() == nil && r.Remaining() > 0 {
		m.Gen = r.U64()
		m.Queued = r.U8() != 0
	}
}

// UnlockReq releases a mutex and posts the thread's write notice for the
// closing interval: pages dirtied in ordinary regions and fine-grained
// records from the consistency region guarded by the lock. The matching
// DiffBatch (same IntervalTag) is already on its way to the homes.
type UnlockReq struct {
	Lock     uint32
	Thread   uint32
	Interval uint64
	Pages    []uint64
	Records  []StoreRecord

	// HandedOff names the thread the releaser granted the lock to
	// directly (peer-to-peer handoff): the manager records the new
	// holder instead of arbitrating. Trailing and omitted when zero, so
	// the classic encoding is unchanged.
	HandedOff uint32
}

func (m *UnlockReq) Kind() Kind { return KUnlockReq }

func (m *UnlockReq) Marshal(w *Writer) {
	w.U32(m.Lock)
	w.U32(m.Thread)
	w.U64(m.Interval)
	w.U64s(m.Pages)
	marshalRecords(w, m.Records)
	if m.HandedOff != 0 {
		w.U32(m.HandedOff)
	}
}

func (m *UnlockReq) Unmarshal(r *Reader) {
	m.Lock = r.U32()
	m.Thread = r.U32()
	m.Interval = r.U64()
	m.Pages = r.U64s()
	m.Records = unmarshalRecords(r)
	if r.Err() == nil && r.Remaining() > 0 {
		m.HandedOff = r.U32()
	}
}

// BarrierReq announces arrival at a barrier; it is simultaneously a
// release (Interval/Pages/Records, like UnlockReq) and an acquire
// (LastSeen, like LockReq). Count is the barrier's membership; every
// arrival quotes it and the manager checks agreement.
type BarrierReq struct {
	Barrier  uint32
	Count    uint32
	Thread   uint32
	LastSeen uint64
	Interval uint64
	Pages    []uint64
	Records  []StoreRecord

	// Epoch is the 1-based barrier round this arrival belongs to, quoted
	// only when the manager is replicated: a client that re-issues an
	// arrival after a leader failover lets the new leader distinguish a
	// duplicate of an already-released round (answer immediately) from a
	// fresh arrival of the next round (count it). Trailing and omitted
	// when zero, so the classic encoding is unchanged.
	Epoch uint64
}

func (m *BarrierReq) Kind() Kind { return KBarrierReq }

func (m *BarrierReq) Marshal(w *Writer) {
	w.U32(m.Barrier)
	w.U32(m.Count)
	w.U32(m.Thread)
	w.U64(m.LastSeen)
	w.U64(m.Interval)
	w.U64s(m.Pages)
	marshalRecords(w, m.Records)
	if m.Epoch != 0 {
		w.U64(m.Epoch)
	}
}

func (m *BarrierReq) Unmarshal(r *Reader) {
	m.Barrier = r.U32()
	m.Count = r.U32()
	m.Thread = r.U32()
	m.LastSeen = r.U64()
	m.Interval = r.U64()
	m.Pages = r.U64s()
	m.Records = unmarshalRecords(r)
	if r.Err() == nil && r.Remaining() > 0 {
		m.Epoch = r.U64()
	}
}

// BarrierResp releases the thread from the barrier.
type BarrierResp struct {
	Seq     uint64
	Notices []Notice
}

func (m *BarrierResp) Kind() Kind { return KBarrierResp }

func (m *BarrierResp) Marshal(w *Writer) {
	w.U64(m.Seq)
	marshalNotices(w, m.Notices)
}

func (m *BarrierResp) Unmarshal(r *Reader) {
	m.Seq = r.U64()
	m.Notices = unmarshalNotices(r)
}

// CondWaitReq atomically releases the named mutex (posting the release
// notice exactly like UnlockReq), sleeps until the condition variable is
// signalled, re-acquires the mutex, and returns. The response is a
// LockResp-shaped acquire.
type CondWaitReq struct {
	Cond     uint32
	Lock     uint32
	Thread   uint32
	LastSeen uint64
	Interval uint64
	Pages    []uint64
	Records  []StoreRecord
}

func (m *CondWaitReq) Kind() Kind { return KCondWaitReq }

func (m *CondWaitReq) Marshal(w *Writer) {
	w.U32(m.Cond)
	w.U32(m.Lock)
	w.U32(m.Thread)
	w.U64(m.LastSeen)
	w.U64(m.Interval)
	w.U64s(m.Pages)
	marshalRecords(w, m.Records)
}

func (m *CondWaitReq) Unmarshal(r *Reader) {
	m.Cond = r.U32()
	m.Lock = r.U32()
	m.Thread = r.U32()
	m.LastSeen = r.U64()
	m.Interval = r.U64()
	m.Pages = r.U64s()
	m.Records = unmarshalRecords(r)
}

// CondWaitResp returns from a condition wait with the mutex re-held.
type CondWaitResp struct {
	Seq     uint64
	Notices []Notice
}

func (m *CondWaitResp) Kind() Kind { return KCondWaitResp }

func (m *CondWaitResp) Marshal(w *Writer) {
	w.U64(m.Seq)
	marshalNotices(w, m.Notices)
}

func (m *CondWaitResp) Unmarshal(r *Reader) {
	m.Seq = r.U64()
	m.Notices = unmarshalNotices(r)
}

// CondSignalReq wakes one (or all) waiters of a condition variable.
type CondSignalReq struct {
	Cond      uint32
	Thread    uint32
	Broadcast bool
}

func (m *CondSignalReq) Kind() Kind { return KCondSignalReq }

func (m *CondSignalReq) Marshal(w *Writer) {
	w.U32(m.Cond)
	w.U32(m.Thread)
	if m.Broadcast {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

func (m *CondSignalReq) Unmarshal(r *Reader) {
	m.Cond = r.U32()
	m.Thread = r.U32()
	m.Broadcast = r.U8() != 0
}

// SuccAnn pre-announces one queued waiter to the chain of holders that
// will pass the lock around without manager round trips. Notices is the
// manager-composed backlog (Waiter's horizon, anchor], where the anchor
// is the board sequence the tenure the train was dispatched under
// acquired at; everything a later train holder adds above the anchor
// travels as the grant's Inline intervals.
type SuccAnn struct {
	Waiter     uint32 // successor thread
	WaiterNode uint32 // fabric node to post the LockGrant to
	Notices    []Notice
}

func (a *SuccAnn) marshal(w *Writer) {
	w.U32(a.Waiter)
	w.U32(a.WaiterNode)
	marshalNotices(w, a.Notices)
}

func (a *SuccAnn) unmarshal(r *Reader) {
	a.Waiter = r.U32()
	a.WaiterNode = r.U32()
	a.Notices = unmarshalNotices(r)
}

func marshalTrain(w *Writer, train []SuccAnn) {
	w.U64(uint64(len(train)))
	for i := range train {
		train[i].marshal(w)
	}
}

func unmarshalTrain(r *Reader) []SuccAnn {
	n := r.U64()
	if r.Err() != nil || n > uint64(r.Remaining()) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	train := make([]SuccAnn, n)
	for i := range train {
		train[i].unmarshal(r)
	}
	return train
}

// NextWaiter is the manager telling the current lock holder who to hand
// the lock to when it releases (peer-to-peer handoff, Munin-style
// distributed lock ownership). Train is a snapshot of the waiter queue:
// the holder grants to Train[0] at its release and forwards the rest of
// the train inside the LockGrant, so a convoy of k waiters costs one
// announcement and k direct holder-to-waiter hops — an announcement
// that chased each new holder through the manager would always lose the
// race against a short critical section. Seq is the board sequence the
// holder acquired at (the anchor every train batch was composed
// against). At most one train is outstanding per lock; the manager
// dispatches the next one when the previous train is exhausted or
// abandoned.
type NextWaiter struct {
	Lock  uint32
	Gen   uint64 // holder tenure the train starts at
	Seq   uint64 // anchor board sequence covered by the train's batches
	Train []SuccAnn
}

func (m *NextWaiter) Kind() Kind { return KNextWaiter }

func (m *NextWaiter) Marshal(w *Writer) {
	w.U32(m.Lock)
	w.U64(m.Gen)
	w.U64(m.Seq)
	marshalTrain(w, m.Train)
}

func (m *NextWaiter) Unmarshal(r *Reader) {
	m.Lock = r.U32()
	m.Gen = r.U64()
	m.Seq = r.U64()
	m.Train = unmarshalTrain(r)
}

// PagePayload carries one whole page's current bytes inside a
// peer-to-peer LockGrant: the releaser's up-to-date copy of a page the
// lock's fine-grained records live on (entry-consistency style — the
// data guarded by the lock moves with the lock). Receivers install it
// only if they have no valid copy of their own.
type PagePayload struct {
	Page uint64
	Data []byte
}

func marshalPagePayloads(w *Writer, ps []PagePayload) {
	w.U64(uint64(len(ps)))
	for i := range ps {
		w.U64(ps[i].Page)
		w.Bytes(ps[i].Data)
	}
}

func unmarshalPagePayloads(r *Reader) []PagePayload {
	n := r.U64()
	if r.Err() != nil || n > uint64(r.Remaining()) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	ps := make([]PagePayload, n)
	for i := range ps {
		ps[i].Page = r.U64()
		ps[i].Data = r.retain(r.Bytes())
	}
	return ps
}

// LockGrant completes a queued acquire that was answered with
// LockResp.Queued. It is posted one-way either by the releasing holder
// (peer-to-peer handoff: Notices is the manager-composed backlog from
// the successor's train entry, Inline the closing intervals of every
// train holder since the anchor — oldest first, ending with the
// releaser's own) or by the manager (central fallback: Notices is the
// full backlog and Inline is empty). Train is the rest of the
// announcement train for the receiver to keep forwarding. PageData is
// the releaser's copy of record-bearing pages a cold successor would
// otherwise have to fetch mid-tenure, on the serialized handoff chain.
// Gen is the receiver's new tenure and Seq its new LastSeen (the
// train's anchor; the Inline intervals above it are redelivered by the
// directory later and deduplicated at the receiver). A nonzero Code
// aborts the acquire (manager shutdown while queued, or eviction).
type LockGrant struct {
	Lock     uint32
	Gen      uint64
	Seq      uint64
	Notices  []Notice
	Inline   []Notice // closing intervals applied in order after Notices
	Train    []SuccAnn
	PageData []PagePayload
	Code     uint16
}

func (m *LockGrant) Kind() Kind { return KLockGrant }

func (m *LockGrant) Marshal(w *Writer) {
	w.U32(m.Lock)
	w.U64(m.Gen)
	w.U64(m.Seq)
	marshalNotices(w, m.Notices)
	marshalNotices(w, m.Inline)
	marshalTrain(w, m.Train)
	marshalPagePayloads(w, m.PageData)
	w.U32(uint32(m.Code))
}

func (m *LockGrant) Unmarshal(r *Reader) {
	m.Lock = r.U32()
	m.Gen = r.U64()
	m.Seq = r.U64()
	m.Notices = unmarshalNotices(r)
	m.Inline = unmarshalNotices(r)
	m.Train = unmarshalTrain(r)
	m.PageData = unmarshalPagePayloads(r)
	m.Code = uint16(r.U32())
}

// ---------------------------------------------------------------------
// Generic messages.

// Ack is the empty success response.
type Ack struct{}

func (m *Ack) Kind() Kind          { return KAck }
func (m *Ack) Marshal(w *Writer)   {}
func (m *Ack) Unmarshal(r *Reader) {}

// Ping is a synchronous no-op used to drain a server's queue: because
// every endpoint's inbox is a single FIFO, the Ack proves everything
// posted before the Ping has been processed.
type Ping struct{}

func (m *Ping) Kind() Kind          { return KPing }
func (m *Ping) Marshal(w *Writer)   {}
func (m *Ping) Unmarshal(r *Reader) {}

// Shutdown asks a server to stop after draining its queue.
type Shutdown struct{}

func (m *Shutdown) Kind() Kind          { return KShutdown }
func (m *Shutdown) Marshal(w *Writer)   {}
func (m *Shutdown) Unmarshal(r *Reader) {}

// Error codes carried by Error responses, so clients can distinguish
// failure classes (orderly shutdown, peer death, unpromoted standby)
// without parsing error text. CodeErr maps a code to its sentinel.
const (
	// CodeGeneric is an unclassified protocol error.
	CodeGeneric uint16 = iota
	// CodeShutdown: the peer completed an orderly shutdown while the
	// request was parked.
	CodeShutdown
	// CodePeerDied: the request was completed (or fenced) because a
	// participant it depended on was declared dead by the manager's
	// lease table, or because the answering component itself died.
	CodePeerDied
	// CodeNotPromoted: a request reached a warm-standby memory server
	// that has not been promoted to primary.
	CodeNotPromoted
	// CodeNotLeader: a request reached a manager replica that is not
	// (or is no longer) the leader. Retryable: the client re-discovers
	// the leader and re-issues.
	CodeNotLeader
)

// Sentinels matched by errors.Is against coded remote errors (the scl
// layer translates an Error response's Code into the matching sentinel).
var (
	// ErrShutdown reports an orderly peer shutdown.
	ErrShutdown = errors.New("proto: peer shut down")
	// ErrPeerDied reports that a participant was declared dead; parked
	// lock/barrier/cond waiters and fetches complete with this instead
	// of hanging when a peer they depend on crashes.
	ErrPeerDied = errors.New("proto: peer died")
	// ErrNotPromoted reports a request to an unpromoted standby.
	ErrNotPromoted = errors.New("proto: standby not promoted")
	// ErrNotLeader reports a request to a manager replica that is not
	// the current leader (a follower, or a deposed ex-leader). Unlike
	// ErrShutdown it is retryable: the caller redirects to the leader.
	ErrNotLeader = errors.New("proto: manager replica is not the leader")
)

// CodeErr returns the sentinel for a code (nil for CodeGeneric and
// unknown codes).
func CodeErr(code uint16) error {
	switch code {
	case CodeShutdown:
		return ErrShutdown
	case CodePeerDied:
		return ErrPeerDied
	case CodeNotPromoted:
		return ErrNotPromoted
	case CodeNotLeader:
		return ErrNotLeader
	}
	return nil
}

// Error reports a server-side failure to the caller. Code classifies
// the failure (CodeGeneric when the sender did not classify it).
type Error struct {
	Code uint16
	Text string
}

func (m *Error) Kind() Kind { return KError }

func (m *Error) Marshal(w *Writer) {
	w.U32(uint32(m.Code))
	w.Bytes([]byte(m.Text))
}

func (m *Error) Unmarshal(r *Reader) {
	m.Code = uint16(r.U32())
	m.Text = string(r.Bytes())
}

// ---------------------------------------------------------------------
// Liveness messages.

// Membership classes carried by heartbeats.
const (
	// MemberThread identifies a compute thread (Member = writer id).
	MemberThread uint8 = 1
	// MemberServer identifies a memory server (Member = index + 1).
	MemberServer uint8 = 2
)

// Heartbeat renews a participant's membership lease at the manager.
// One-way and free of virtual-time cost: the manager processes it
// without touching its virtual clock, so enabling liveness does not
// perturb the deterministic virtual-time results of a run. A Member of
// zero is a pure liveness tick (it only prompts the manager to sweep
// its lease table); Bye announces a graceful departure so the member is
// removed without being declared dead.
type Heartbeat struct {
	Member uint32
	Class  uint8
	Node   uint32
	Bye    bool
}

func (m *Heartbeat) Kind() Kind { return KHeartbeat }

func (m *Heartbeat) Marshal(w *Writer) {
	w.U32(m.Member)
	w.U8(m.Class)
	w.U32(m.Node)
	if m.Bye {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

func (m *Heartbeat) Unmarshal(r *Reader) {
	m.Member = r.U32()
	m.Class = r.U8()
	m.Node = r.U32()
	m.Bye = r.U8() != 0
}

// Promote turns a warm-standby memory server into the primary for its
// home index. Idempotent: an already-promoted server acks again.
type Promote struct{}

func (m *Promote) Kind() Kind          { return KPromote }
func (m *Promote) Marshal(w *Writer)   {}
func (m *Promote) Unmarshal(r *Reader) {}

// WriterDead is the manager's obituary for a reaped compute thread,
// broadcast one-way to every memory server and warm standby. A writer
// can die between announcing a release interval to the manager and
// shipping the interval's DiffBatch to its homes (the release pipeline
// posts the notice first), leaving a tag that acquirers quote in
// fetches but that no batch will ever mark applied. On receipt each
// page shard stops waiting on the writer's unapplied tags: parked
// fetches drop them and new fetches skip them, serving the freshest
// bytes that did arrive instead of parking forever.
type WriterDead struct {
	Writer uint32

	// Gen is the reap generation the obituary belongs to. With a
	// replicated manager both a deposed leader and its successor can
	// reap the same lease during a failover window; the memory servers
	// deduplicate obituaries per (writer, generation) so the second
	// broadcast is a no-op. Trailing and omitted when zero (classic
	// single-manager encoding unchanged).
	Gen uint64
}

func (m *WriterDead) Kind() Kind { return KWriterDead }

func (m *WriterDead) Marshal(w *Writer) {
	w.U32(m.Writer)
	if m.Gen != 0 {
		w.U64(m.Gen)
	}
}

func (m *WriterDead) Unmarshal(r *Reader) {
	m.Writer = r.U32()
	if r.Err() == nil && r.Remaining() > 0 {
		m.Gen = r.U64()
	}
}

// ---------------------------------------------------------------------
// Replicated-manager messages (consensus log).

// ReplEntry is one replicated log entry: a client mutation (or a
// manager-internal event such as a lease reap) captured as its wire
// encoding, stamped with the log index and the leader term that
// appended it. Src is the fabric node the original request came from,
// so a promoted follower can complete the operation toward the right
// client.
type ReplEntry struct {
	Index uint64
	Term  uint64
	Src   uint32
	Kind  uint16
	Body  []byte
}

func (e *ReplEntry) marshal(w *Writer) {
	w.U64(e.Index)
	w.U64(e.Term)
	w.U32(e.Src)
	w.U32(uint32(e.Kind))
	w.Bytes(e.Body)
}

func (e *ReplEntry) unmarshal(r *Reader) {
	e.Index = r.U64()
	e.Term = r.U64()
	e.Src = r.U32()
	e.Kind = uint16(r.U32())
	e.Body = append([]byte(nil), r.Bytes()...)
}

// ReplAppend carries log entries from the manager leader to a follower
// replica. An empty Entries slice is a lease renewal: it proves the
// leader is alive (and still the leader — a follower that has adopted a
// higher term rejects it, deposing the sender).
type ReplAppend struct {
	Term    uint64
	Entries []ReplEntry
}

func (m *ReplAppend) Kind() Kind { return KReplAppend }

func (m *ReplAppend) Marshal(w *Writer) {
	w.U64(m.Term)
	w.U64(uint64(len(m.Entries)))
	for i := range m.Entries {
		m.Entries[i].marshal(w)
	}
}

func (m *ReplAppend) Unmarshal(r *Reader) {
	m.Term = r.U64()
	n := r.U64()
	if r.Err() != nil || n > uint64(r.Remaining()) {
		r.fail()
		return
	}
	m.Entries = make([]ReplEntry, n)
	for i := range m.Entries {
		m.Entries[i].unmarshal(r)
	}
}

// ReplAck answers a ReplAppend. OK means every entry up to NextIndex-1
// is accepted and applied; a rejection carries the follower's current
// term (higher than the sender's when the sender has been deposed) and
// the next index it expects (lower than the sender's first entry when
// the follower lags and needs earlier entries or a snapshot).
type ReplAck struct {
	OK        bool
	Term      uint64
	NextIndex uint64
}

func (m *ReplAck) Kind() Kind { return KReplAck }

func (m *ReplAck) Marshal(w *Writer) {
	if m.OK {
		w.U8(1)
	} else {
		w.U8(0)
	}
	w.U64(m.Term)
	w.U64(m.NextIndex)
}

func (m *ReplAck) Unmarshal(r *Reader) {
	m.OK = r.U8() != 0
	m.Term = r.U64()
	m.NextIndex = r.U64()
}

// PromoteMgr turns a follower manager replica into the leader, under a
// new (higher) term. Sent by the runtime's failover controller when
// clients observe the current leader dead. Idempotent: an
// already-promoted replica at the same or higher term acks again.
type PromoteMgr struct {
	Term uint64
}

func (m *PromoteMgr) Kind() Kind          { return KPromoteMgr }
func (m *PromoteMgr) Marshal(w *Writer)   { w.U64(m.Term) }
func (m *PromoteMgr) Unmarshal(r *Reader) { m.Term = r.U64() }

// ReplSnapshot installs a full manager state snapshot on a follower
// whose next expected index has been truncated out of the leader's log.
// Index is the last log index the snapshot covers; appends resume at
// Index+1.
type ReplSnapshot struct {
	Term  uint64
	Index uint64
	State []byte
}

func (m *ReplSnapshot) Kind() Kind { return KReplSnapshot }

func (m *ReplSnapshot) Marshal(w *Writer) {
	w.U64(m.Term)
	w.U64(m.Index)
	w.Bytes(m.State)
}

func (m *ReplSnapshot) Unmarshal(r *Reader) {
	m.Term = r.U64()
	m.Index = r.U64()
	m.State = append([]byte(nil), r.Bytes()...)
}

// ReclaimEvent is a log-entry-only message (never sent on its own): the
// leader replicates a membership lease reap before acting on it, so a
// promoted follower knows the member is already dead and never reaps
// (and recomputes barriers for) the same lease a second time. Gen is
// the reap generation quoted in the resulting WriterDead obituaries.
type ReclaimEvent struct {
	Thread uint32
	Node   uint32
	Gen    uint64
}

func (m *ReclaimEvent) Kind() Kind { return KReclaimEvent }

func (m *ReclaimEvent) Marshal(w *Writer) {
	w.U32(m.Thread)
	w.U32(m.Node)
	w.U64(m.Gen)
}

func (m *ReclaimEvent) Unmarshal(r *Reader) {
	m.Thread = r.U32()
	m.Node = r.U32()
	m.Gen = r.U64()
}

// ---------------------------------------------------------------------
// Address-space snapshot/fork messages.

// SnapshotASReq asks the manager to seal the striped range
// [Base, Base+NPages*PageSize) behind a fresh refcounted snapshot id.
// The manager only records the id and geometry; the caller captures the
// frames at the homes with SealAS before handing the id to anyone. Seq
// is the allocation-plane sequence number (same dedup discipline as
// AllocReq: a retry across manager failover re-quotes it and gets the
// original id back; Seq 0 disables dedup).
type SnapshotASReq struct {
	Thread uint32
	Base   uint64
	NPages uint64
	Seq    uint64
}

func (m *SnapshotASReq) Kind() Kind { return KSnapshotASReq }

func (m *SnapshotASReq) Marshal(w *Writer) {
	w.U32(m.Thread)
	w.U64(m.Base)
	w.U64(m.NPages)
	w.U64(m.Seq)
}

func (m *SnapshotASReq) Unmarshal(r *Reader) {
	m.Thread = r.U32()
	m.Base = r.U64()
	m.NPages = r.U64()
	m.Seq = r.U64()
}

// SnapshotASResp returns the snapshot id (never 0).
type SnapshotASResp struct {
	Snap uint64
}

func (m *SnapshotASResp) Kind() Kind          { return KSnapshotASResp }
func (m *SnapshotASResp) Marshal(w *Writer)   { w.U64(m.Snap) }
func (m *SnapshotASResp) Unmarshal(r *Reader) { m.Snap = r.U64() }

// ForkASReq asks the manager for a copy-on-write fork of a sealed
// snapshot: a fresh striped range, aligned exactly like the original so
// every page offset keeps its home server, whose reads are served from
// the sealed frames until first write. O(1) in the image size — the
// manager bumps the snapshot's refcount and runs one striped-zone
// allocation; no page bytes move. Seq follows the AllocReq dedup
// discipline.
type ForkASReq struct {
	Thread uint32
	Snap   uint64
	Seq    uint64
}

func (m *ForkASReq) Kind() Kind { return KForkASReq }

func (m *ForkASReq) Marshal(w *Writer) {
	w.U32(m.Thread)
	w.U64(m.Snap)
	w.U64(m.Seq)
}

func (m *ForkASReq) Unmarshal(r *Reader) {
	m.Thread = r.U32()
	m.Snap = r.U64()
	m.Seq = r.U64()
}

// ForkASResp returns the forked range's base plus the snapshot geometry
// the client needs to register ForkMaps at the homes.
type ForkASResp struct {
	Base     uint64
	OrigBase uint64
	NPages   uint64
}

func (m *ForkASResp) Kind() Kind { return KForkASResp }

func (m *ForkASResp) Marshal(w *Writer) {
	w.U64(m.Base)
	w.U64(m.OrigBase)
	w.U64(m.NPages)
}

func (m *ForkASResp) Unmarshal(r *Reader) {
	m.Base = r.U64()
	m.OrigBase = r.U64()
	m.NPages = r.U64()
}

// SealAS asks a home server to capture the current contents of the
// in-range pages it hosts as the sealed frames of snapshot Snap. Needs
// quotes outstanding interval tags exactly like a fetch, so the seal
// parks until every release the sealer has observed is applied; the
// server also pulls lazily-owned diffs before sealing. Answered with an
// Ack once the frames are stored (word-run compressed).
type SealAS struct {
	Snap   uint64
	Base   uint64
	NPages uint64
	Needs  []PageNeed
	// Pages, when set, names the exact pages to seal instead of "every
	// in-range page homed here" — used by a primary shard forwarding its
	// sealed share to the warm standby (trailing field; absent on the
	// client form).
	Pages []uint64
}

func (m *SealAS) Kind() Kind { return KSealAS }

func (m *SealAS) Marshal(w *Writer) {
	w.U64(m.Snap)
	w.U64(m.Base)
	w.U64(m.NPages)
	marshalNeeds(w, m.Needs)
	if len(m.Pages) > 0 {
		w.U64s(m.Pages)
	}
}

func (m *SealAS) Unmarshal(r *Reader) {
	m.Snap = r.U64()
	m.Base = r.U64()
	m.NPages = r.U64()
	m.Needs = unmarshalNeeds(r)
	if r.Err() == nil && r.Remaining() > 0 {
		m.Pages = r.U64s()
	}
}

// ForkMap tells a home server that the forked range starting at Base
// mirrors the sealed frames of snapshot Snap (original base OrigBase,
// NPages pages). Reads of an unmaterialized fork page decode the sealed
// frame; the first write copies it into a private page (copy-on-write).
// Answered with an Ack so the forker knows every home can serve the
// range before it touches a byte.
type ForkMap struct {
	Snap     uint64
	Base     uint64
	OrigBase uint64
	NPages   uint64
}

func (m *ForkMap) Kind() Kind { return KForkMap }

func (m *ForkMap) Marshal(w *Writer) {
	w.U64(m.Snap)
	w.U64(m.Base)
	w.U64(m.OrigBase)
	w.U64(m.NPages)
}

func (m *ForkMap) Unmarshal(r *Reader) {
	m.Snap = r.U64()
	m.Base = r.U64()
	m.OrigBase = r.U64()
	m.NPages = r.U64()
}

// ForkUnmap undoes a ForkMap on a home server: the fork-range entry
// rooted at Base is removed (NPages 0 means no range — a release-only
// message) and the private pages the fork materialized in [Base,
// Base+NPages) are discarded. Release names snapshots whose manager
// refcount reached zero; their sealed frames are dropped too. Acked
// only after every shard has purged its share, so the caller knows the
// homes can no longer resolve the dead range before it lets the
// manager reuse the space.
type ForkUnmap struct {
	Base    uint64
	NPages  uint64
	Release []uint64
}

func (m *ForkUnmap) Kind() Kind { return KForkUnmap }

func (m *ForkUnmap) Marshal(w *Writer) {
	w.U64(m.Base)
	w.U64(m.NPages)
	w.U64s(m.Release)
}

func (m *ForkUnmap) Unmarshal(r *Reader) {
	m.Base = r.U64()
	m.NPages = r.U64()
	m.Release = r.U64s()
}
