// Package pthreads implements the cache-coherent shared-memory baseline
// the paper compares against: the same kernels, the same vm.VM
// interface, but ordinary loads and stores into one flat memory plus
// hardware-speed synchronization.
//
// The paper's baseline is a Pthreads implementation on one dual
// quad-core Xeon node (8 cores); every figure normalizes against or
// plots alongside it. Virtual time here models that hardware: loads,
// stores and flops cost what they cost the Samhita threads (so
// compute-time ratios isolate the DSM overheads), mutexes cost tens of
// nanoseconds plus a coherence miss on cross-core handoff, and barriers
// cost a centralized-barrier latency rather than manager round trips.
//
// Concurrency is real — threads are goroutines, mutexes wrap sync.Mutex
// — so data races in kernels are caught by the Go race detector exactly
// as they would crash a real Pthreads program.
package pthreads

import (
	"fmt"
	"sync"

	"repro/internal/layout"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/vtime"
)

// Config parameterizes the baseline.
type Config struct {
	// HW is the hardware cost model.
	HW vtime.HWModel
	// MemBytes is the size of the flat shared memory (0 = 64 MiB).
	MemBytes int
	// MaxCores bounds Run's thread count (0 = 8, one Harpertown node).
	// The paper's Pthreads curves stop at 8 cores for exactly this
	// reason.
	MaxCores int
}

// VM is the Pthreads baseline backend.
type VM struct {
	cfg Config
	mem []byte

	allocMu   sync.Mutex
	allocNext layout.Addr
	allocs    map[layout.Addr]int

	snapMu   sync.Mutex
	snapNext uint64
	snaps    map[uint64][]byte
}

var _ vm.VM = (*VM)(nil)

// New creates a baseline VM.
func New(cfg Config) *VM {
	if cfg.HW.FlopTime == 0 {
		cfg.HW = vtime.DefaultHW
	}
	if cfg.MemBytes <= 0 {
		cfg.MemBytes = 64 << 20
	}
	if cfg.MaxCores <= 0 {
		cfg.MaxCores = 8
	}
	return &VM{
		cfg:       cfg,
		mem:       make([]byte, cfg.MemBytes),
		allocNext: 64, // keep address 0 unused, as a poor man's nil guard
		allocs:    make(map[layout.Addr]int),
		snaps:     make(map[uint64][]byte),
	}
}

// Name implements vm.VM.
func (p *VM) Name() string { return "pthreads" }

// Close implements vm.VM.
func (p *VM) Close() error { return nil }

// Run implements vm.VM.
func (p *VM) Run(n int, body func(t vm.Thread)) (*stats.Run, error) {
	if n <= 0 {
		return nil, fmt.Errorf("pthreads: need at least one thread, got %d", n)
	}
	if n > p.cfg.MaxCores {
		return nil, fmt.Errorf("pthreads: %d threads exceed the node's %d cores", n, p.cfg.MaxCores)
	}
	var (
		wg       sync.WaitGroup
		reg      stats.Registry
		panicMu  sync.Mutex
		panicked error
	)
	for i := 0; i < n; i++ {
		th := &Thread{
			vm:    p,
			id:    i,
			p:     n,
			clock: vtime.NewClock(0),
		}
		th.st = stats.Thread{ID: i}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = fmt.Errorf("pthreads: thread %d: %v", th.id, r)
					}
					panicMu.Unlock()
				}
				th.settleCompute()
				if th.frozen != nil {
					th.st = *th.frozen
				}
				reg.Add(&th.st)
			}()
			body(th)
		}()
	}
	wg.Wait()
	if panicked != nil {
		return nil, panicked
	}
	return reg.Run(), nil
}

// alloc carves memory from the flat arena.
func (p *VM) alloc(n int) (layout.Addr, error) {
	p.allocMu.Lock()
	defer p.allocMu.Unlock()
	a := layout.AlignUp(p.allocNext, 16)
	if int(a)+n > len(p.mem) {
		return 0, fmt.Errorf("pthreads: out of memory (%d requested, %d left)", n, len(p.mem)-int(a))
	}
	p.allocNext = a + layout.Addr(n)
	p.allocs[a] = n
	return a, nil
}

// Thread is one baseline thread.
type Thread struct {
	vm     *VM
	id     int
	p      int
	clock  *vtime.Clock
	st     stats.Thread
	mark   vtime.Time
	frozen *stats.Thread
}

var _ vm.Thread = (*Thread)(nil)

// ID implements vm.Thread.
func (t *Thread) ID() int { return t.id }

// P implements vm.Thread.
func (t *Thread) P() int { return t.p }

// Clock implements vm.Thread.
func (t *Thread) Clock() vtime.Time { return t.clock.Now() }

// Stats implements vm.Thread.
func (t *Thread) Stats() *stats.Thread { return &t.st }

func (t *Thread) settleCompute() {
	now := t.clock.Now()
	t.st.ComputeTime += now - t.mark
	t.mark = now
}

func (t *Thread) settleSync() {
	now := t.clock.Now()
	t.st.SyncTime += now - t.mark
	t.mark = now
}

// ResetMeasurement implements vm.Thread.
func (t *Thread) ResetMeasurement() {
	t.st = stats.Thread{ID: t.id}
	t.frozen = nil
	t.mark = t.clock.Now()
}

// StopMeasurement implements vm.Thread.
func (t *Thread) StopMeasurement() {
	t.settleCompute()
	snap := t.st.Snapshot()
	t.frozen = &snap
}

// Compute implements vm.Thread.
func (t *Thread) Compute(flops int) {
	if flops > 0 {
		t.clock.Advance(vtime.Time(flops) * t.vm.cfg.HW.FlopTime)
	}
}

// SleepUntil implements vm.Thread: the open-loop idle wait (see the
// interface comment). Prior work settles to compute, the jump to tm is
// attributed to idle.
func (t *Thread) SleepUntil(tm vtime.Time) {
	t.settleCompute()
	now := t.clock.Now()
	if tm <= now {
		return
	}
	t.clock.AdvanceTo(tm)
	t.st.IdleTime += t.clock.Now() - now
	t.mark = t.clock.Now()
}

// Malloc implements vm.Thread.
func (t *Thread) Malloc(n int) vm.Addr {
	a, err := t.vm.alloc(n)
	if err != nil {
		panic(err)
	}
	t.st.ArenaAllocs++
	return a
}

// GlobalAlloc implements vm.Thread. On coherent hardware there is no
// distinction; it exists so kernels stay backend-neutral.
func (t *Thread) GlobalAlloc(n int) vm.Addr {
	a, err := t.vm.alloc(n)
	if err != nil {
		panic(err)
	}
	t.st.SharedAllocs++
	return a
}

// Free implements vm.Thread (bump allocator: free is a no-op, tracked
// for leak accounting only).
func (t *Thread) Free(a vm.Addr) {
	t.vm.allocMu.Lock()
	delete(t.vm.allocs, a)
	t.vm.allocMu.Unlock()
}

// SnapshotAS implements vm.Thread: on coherent hardware the snapshot is
// an eager copy of the range (the moral equivalent of fork(2) without
// the page-table tricks). Like the bulk span accessors, the streamed
// copy costs one access overhead.
func (t *Thread) SnapshotAS(base vm.Addr, n int) uint64 {
	t.clock.Advance(t.vm.cfg.HW.AccessTime)
	src := t.span(base, n, "snapshot")
	img := append([]byte(nil), src...)
	t.vm.snapMu.Lock()
	t.vm.snapNext++
	id := t.vm.snapNext
	t.vm.snaps[id] = img
	t.vm.snapMu.Unlock()
	return id
}

// ForkAS implements vm.Thread: allocate a fresh range and copy the
// snapshot image in.
func (t *Thread) ForkAS(snap uint64) vm.Addr {
	t.vm.snapMu.Lock()
	img, ok := t.vm.snaps[snap]
	t.vm.snapMu.Unlock()
	if !ok {
		panic(fmt.Sprintf("pthreads thread %d: fork of unknown snapshot %d", t.id, snap))
	}
	a, err := t.vm.alloc(len(img))
	if err != nil {
		panic(err)
	}
	t.clock.Advance(t.vm.cfg.HW.AccessTime)
	copy(t.vm.mem[a:int(a)+len(img)], img)
	t.st.SharedAllocs++
	return a
}

func (t *Thread) span(a vm.Addr, n int, op string) []byte {
	end := int(a) + n
	if a == 0 || end > len(t.vm.mem) {
		panic(fmt.Sprintf("pthreads thread %d: %s of %d bytes at %#x out of range", t.id, op, n, uint64(a)))
	}
	return t.vm.mem[a:end]
}

// ReadBytes implements vm.Thread.
func (t *Thread) ReadBytes(a vm.Addr, buf []byte) {
	t.clock.Advance(t.vm.cfg.HW.AccessTime)
	copy(buf, t.span(a, len(buf), "read"))
}

// WriteBytes implements vm.Thread.
func (t *Thread) WriteBytes(a vm.Addr, data []byte) {
	t.clock.Advance(t.vm.cfg.HW.AccessTime)
	copy(t.span(a, len(data), "write"), data)
}

// ReadFloat64 implements vm.Thread.
func (t *Thread) ReadFloat64(a vm.Addr) float64 {
	t.clock.Advance(t.vm.cfg.HW.AccessTime)
	return vm.GetFloat64(t.span(a, 8, "read"))
}

// WriteFloat64 implements vm.Thread.
func (t *Thread) WriteFloat64(a vm.Addr, v float64) {
	t.clock.Advance(t.vm.cfg.HW.AccessTime)
	vm.PutFloat64(t.span(a, 8, "write"), v)
}

// ReadFloat64s implements vm.Thread. On coherent hardware a span is an
// ordinary sequence of loads; the whole span costs one AccessTime, the
// same streaming advantage the DSM backend's bulk path models.
func (t *Thread) ReadFloat64s(a vm.Addr, dst []float64) {
	if len(dst) == 0 {
		return
	}
	t.clock.Advance(t.vm.cfg.HW.AccessTime)
	b := t.span(a, 8*len(dst), "read")
	for i := range dst {
		dst[i] = vm.GetFloat64(b[8*i:])
	}
}

// WriteFloat64s implements vm.Thread.
func (t *Thread) WriteFloat64s(a vm.Addr, src []float64) {
	if len(src) == 0 {
		return
	}
	t.clock.Advance(t.vm.cfg.HW.AccessTime)
	b := t.span(a, 8*len(src), "write")
	for i, v := range src {
		vm.PutFloat64(b[8*i:], v)
	}
}

// AddFloat64 implements vm.Thread (one access, like a cached RMW).
func (t *Thread) AddFloat64(a vm.Addr, v float64) float64 {
	t.clock.Advance(t.vm.cfg.HW.AccessTime)
	b := t.span(a, 8, "add")
	sum := vm.GetFloat64(b) + v
	vm.PutFloat64(b, sum)
	return sum
}

// AddInt64 implements vm.Thread.
func (t *Thread) AddInt64(a vm.Addr, v int64) int64 {
	t.clock.Advance(t.vm.cfg.HW.AccessTime)
	b := t.span(a, 8, "add")
	sum := vm.GetInt64(b) + v
	vm.PutInt64(b, sum)
	return sum
}

// ReadInt64 implements vm.Thread.
func (t *Thread) ReadInt64(a vm.Addr) int64 {
	t.clock.Advance(t.vm.cfg.HW.AccessTime)
	return vm.GetInt64(t.span(a, 8, "read"))
}

// WriteInt64 implements vm.Thread.
func (t *Thread) WriteInt64(a vm.Addr, v int64) {
	t.clock.Advance(t.vm.cfg.HW.AccessTime)
	vm.PutInt64(t.span(a, 8, "write"), v)
}

// ---------------------------------------------------------------------
// Synchronization.

// NewMutex implements vm.VM.
func (p *VM) NewMutex() vm.Mutex { return &hwMutex{vm: p} }

// hwMutex pairs a real sync.Mutex with virtual-time bookkeeping.
type hwMutex struct {
	vm *VM
	mu sync.Mutex
	// Guarded by mu: virtual time of the last release and who held it,
	// for the handoff/coherence-miss charge.
	lastRelease vtime.Time
	lastHolder  int
	everHeld    bool
}

// Lock implements vm.Mutex.
func (m *hwMutex) Lock(th vm.Thread) {
	t := th.(*Thread)
	t.settleCompute()
	m.mu.Lock()
	t.clock.Advance(m.vm.cfg.HW.LockTime)
	// The lock cannot be acquired in virtual time before its previous
	// release; a handoff from another core bounces the line.
	if m.everHeld {
		t.clock.AdvanceTo(m.lastRelease)
		if m.lastHolder != t.id {
			t.clock.Advance(m.vm.cfg.HW.CoherenceMiss)
		}
	}
	t.st.LockOps++
	t.settleSync()
}

// Unlock implements vm.Mutex.
func (m *hwMutex) Unlock(th vm.Thread) {
	t := th.(*Thread)
	t.settleCompute()
	t.clock.Advance(m.vm.cfg.HW.LockTime)
	m.lastRelease = t.clock.Now()
	m.lastHolder = t.id
	m.everHeld = true
	t.st.LockOps++
	t.settleSync()
	m.mu.Unlock()
}

// NewBarrier implements vm.VM.
func (p *VM) NewBarrier(n int) vm.Barrier {
	b := &hwBarrier{vm: p, n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// hwBarrier is a centralized barrier: all threads leave at the virtual
// time of the last arrival plus the barrier cost.
type hwBarrier struct {
	vm   *VM
	n    int
	mu   sync.Mutex
	cond *sync.Cond

	arrived     int
	generation  int
	maxArrive   vtime.Time
	lastRelease vtime.Time
}

// Wait implements vm.Barrier.
func (b *hwBarrier) Wait(th vm.Thread) {
	t := th.(*Thread)
	t.settleCompute()
	b.mu.Lock()
	gen := b.generation
	if t.clock.Now() > b.maxArrive {
		b.maxArrive = t.clock.Now()
	}
	b.arrived++
	if b.arrived == b.n {
		// Last arrival releases everyone. lastRelease is safe against
		// the next generation: no thread can re-arrive before every
		// current waiter has left (they are the same n threads).
		b.lastRelease = b.maxArrive + b.vm.cfg.HW.BarrierBase +
			vtime.Time(b.n)*b.vm.cfg.HW.BarrierPerThread
		b.maxArrive = 0
		b.arrived = 0
		b.generation++
		t.clock.AdvanceTo(b.lastRelease)
		b.cond.Broadcast()
	} else {
		for gen == b.generation {
			b.cond.Wait()
		}
		t.clock.AdvanceTo(b.lastRelease)
	}
	t.st.BarrierOps++
	b.mu.Unlock()
	t.settleSync()
}

// NewCond implements vm.VM.
func (p *VM) NewCond() vm.Cond { return &hwCond{vm: p} }

// hwCond is a condition variable over hwMutex.
type hwCond struct {
	vm *VM
	mu sync.Mutex

	waiters []chan vtime.Time
}

// Wait implements vm.Cond.
func (c *hwCond) Wait(th vm.Thread, mu vm.Mutex) {
	t := th.(*Thread)
	m, ok := mu.(*hwMutex)
	if !ok {
		panic("pthreads: cond used with a foreign mutex")
	}
	t.settleCompute()
	ch := make(chan vtime.Time, 1)
	c.mu.Lock()
	c.waiters = append(c.waiters, ch)
	c.mu.Unlock()
	// Atomically release the mutex and sleep.
	m.Unlock(th)
	wakeAt := <-ch
	t.clock.AdvanceTo(wakeAt)
	m.Lock(th)
	t.st.CondOps++
	t.settleSync()
}

// Signal implements vm.Cond.
func (c *hwCond) Signal(th vm.Thread) { c.wake(th, 1) }

// Broadcast implements vm.Cond.
func (c *hwCond) Broadcast(th vm.Thread) { c.wake(th, -1) }

func (c *hwCond) wake(th vm.Thread, n int) {
	t := th.(*Thread)
	t.settleCompute()
	t.clock.Advance(c.vm.cfg.HW.LockTime)
	c.mu.Lock()
	if n < 0 || n > len(c.waiters) {
		n = len(c.waiters)
	}
	for i := 0; i < n; i++ {
		c.waiters[i] <- t.clock.Now()
	}
	c.waiters = append(c.waiters[:0:0], c.waiters[n:]...)
	c.mu.Unlock()
	t.st.CondOps++
	t.settleSync()
}
