package pthreads

import (
	"strings"
	"testing"

	"repro/internal/vm"
	"repro/internal/vtime"
)

func TestReadWriteRoundTrip(t *testing.T) {
	p := New(Config{})
	run, err := p.Run(1, func(th vm.Thread) {
		a := th.Malloc(128)
		th.WriteFloat64(a, 2.5)
		th.WriteInt64(a+8, 42)
		if th.ReadFloat64(a) != 2.5 || th.ReadInt64(a+8) != 42 {
			t.Error("round trip failed")
		}
		buf := make([]byte, 4)
		th.WriteBytes(a+16, []byte{1, 2, 3, 4})
		th.ReadBytes(a+16, buf)
		if buf[3] != 4 {
			t.Errorf("bytes: %v", buf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.MaxComputeTime() == 0 {
		t.Error("accesses cost nothing")
	}
}

func TestCoreLimitEnforced(t *testing.T) {
	p := New(Config{MaxCores: 4})
	if _, err := p.Run(5, func(vm.Thread) {}); err == nil {
		t.Fatal("5 threads on a 4-core node accepted")
	}
	if _, err := p.Run(0, func(vm.Thread) {}); err == nil {
		t.Fatal("0 threads accepted")
	}
}

func TestMutexCounter(t *testing.T) {
	p := New(Config{})
	mu := p.NewMutex()
	bar := p.NewBarrier(8)
	var base vm.Addr
	run, err := p.Run(8, func(th vm.Thread) {
		if th.ID() == 0 {
			base = th.GlobalAlloc(8)
		}
		bar.Wait(th)
		for i := 0; i < 50; i++ {
			mu.Lock(th)
			th.WriteFloat64(base, th.ReadFloat64(base)+1)
			mu.Unlock(th)
		}
		bar.Wait(th)
		if got := th.ReadFloat64(base); got != 400 {
			t.Errorf("counter = %v, want 400", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.MaxSyncTime() == 0 {
		t.Error("locks cost no sync time")
	}
}

func TestBarrierVirtualTimeIsMaxOfArrivals(t *testing.T) {
	p := New(Config{})
	bar := p.NewBarrier(4)
	run, err := p.Run(4, func(th vm.Thread) {
		// Skew arrivals: thread i computes i million flops.
		th.Compute(th.ID() * 1_000_000)
		bar.Wait(th)
		// Everyone leaves at (or after) the slowest arrival.
		if th.Clock() < 3_000_000*vtime.DefaultHW.FlopTime {
			t.Errorf("thread %d left barrier at %v", th.ID(), th.Clock())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fast threads' wait shows up as sync time.
	var fastest, slowest vtime.Time
	for _, th := range run.Threads {
		if th.ID == 0 {
			fastest = th.SyncTime
		}
		if th.ID == 3 {
			slowest = th.SyncTime
		}
	}
	if fastest <= slowest {
		t.Errorf("fast thread sync %v should exceed slow thread sync %v", fastest, slowest)
	}
}

func TestBarrierReusableAcrossGenerations(t *testing.T) {
	p := New(Config{})
	bar := p.NewBarrier(4)
	var sum [4]int
	_, err := p.Run(4, func(th vm.Thread) {
		for round := 0; round < 50; round++ {
			sum[th.ID()]++
			bar.Wait(th)
			for i := 0; i < 4; i++ {
				if sum[i] != round+1 {
					t.Errorf("round %d: thread %d sees sum[%d]=%d", round, th.ID(), i, sum[i])
					return
				}
			}
			bar.Wait(th)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCondSignal(t *testing.T) {
	p := New(Config{})
	mu := p.NewMutex()
	cond := p.NewCond()
	bar := p.NewBarrier(2)
	var base vm.Addr
	_, err := p.Run(2, func(th vm.Thread) {
		if th.ID() == 0 {
			base = th.GlobalAlloc(16)
		}
		bar.Wait(th)
		if th.ID() == 0 {
			mu.Lock(th)
			for th.ReadInt64(base) == 0 {
				cond.Wait(th, mu)
			}
			got := th.ReadFloat64(base + 8)
			mu.Unlock(th)
			if got != 1.5 {
				t.Errorf("consumer got %v", got)
			}
		} else {
			mu.Lock(th)
			th.WriteFloat64(base+8, 1.5)
			th.WriteInt64(base, 1)
			mu.Unlock(th)
			cond.Signal(th)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOutOfMemory(t *testing.T) {
	p := New(Config{MemBytes: 4096})
	_, err := p.Run(1, func(th vm.Thread) {
		th.Malloc(8192)
	})
	if err == nil || !strings.Contains(err.Error(), "out of memory") {
		t.Fatalf("err = %v", err)
	}
}

func TestOutOfRangeAccessPanicsToError(t *testing.T) {
	p := New(Config{MemBytes: 4096})
	_, err := p.Run(1, func(th vm.Thread) {
		th.ReadFloat64(1 << 30)
	})
	if err == nil {
		t.Fatal("wild read succeeded")
	}
	_, err = p.Run(1, func(th vm.Thread) {
		th.ReadFloat64(0) // nil guard
	})
	if err == nil {
		t.Fatal("nil read succeeded")
	}
}

func TestComputeParityWithSamhitaModel(t *testing.T) {
	// The two backends must charge identical arithmetic costs, or
	// normalized compute-time comparisons are meaningless.
	if vtime.DefaultHW.FlopTime != vtime.DefaultCPU.FlopTime {
		t.Fatal("flop cost mismatch between backends")
	}
	if vtime.DefaultHW.AccessTime != vtime.DefaultCPU.AccessTime {
		t.Fatal("access cost mismatch between backends")
	}
}
