// Package simnet provides the simulated interconnect fabric that stands
// in for the paper's physical transports (QDR InfiniBand between cluster
// nodes; the PCI Express bus between host and coprocessor in the
// heterogeneous-node mapping).
//
// The fabric moves real bytes between goroutines through channels, so
// the DSM protocol above it runs for real — pages are fetched, diffs
// are merged, locks are granted. Time, however, is virtual: every
// message carries the sender's virtual send time, and its arrival time
// is computed from a vtime.LinkModel (latency + size/bandwidth). A
// server that processes its inbox serially advances its own virtual
// clock past each arrival plus a per-request service time, which models
// queueing — the memory-server hot spots that motivate Samhita's striped
// allocation emerge from this rule rather than being scripted.
//
// simnet is deliberately unaware of the Samhita protocol: message kinds
// are opaque uint16s and bodies are opaque byte slices. Package scl
// layers the typed protocol on top.
package simnet

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/vtime"
)

// NodeID identifies a fabric endpoint (a compute thread, a memory
// server, or the manager).
type NodeID uint32

// HeaderBytes is the fixed per-message framing overhead charged to the
// wire in addition to the body (addresses, kind, virtual timestamp,
// verbs/transport header in the real system).
const HeaderBytes = 32

// inboxDepth bounds each port's receive queue. Senders block when a
// receiver is this far behind, providing natural backpressure for
// one-way diff traffic.
const inboxDepth = 4096

// Message is one unit of traffic. Exported fields are what a receiver
// may inspect.
type Message struct {
	Src    NodeID
	Kind   uint16
	Body   []byte
	Arrive vtime.Time // virtual arrival time at the receiver
	Svc    vtime.Time // per-request service time of the incoming link

	reply  chan *Message // non-nil for RPC requests
	fabric *Fabric
	dst    NodeID
}

// Fabric connects a set of ports with a (possibly heterogeneous) link
// model.
type Fabric struct {
	mu     sync.Mutex
	ports  map[NodeID]*Port
	model  vtime.LinkModel
	linkFn func(src, dst NodeID) vtime.LinkModel
	seq    *Sequencer

	msgs  atomic.Int64
	bytes atomic.Int64
}

// NewFabric creates a fabric where every link uses the given model.
func NewFabric(model vtime.LinkModel) *Fabric {
	return &Fabric{ports: make(map[NodeID]*Port), model: model}
}

// Sequence switches the fabric to deterministic delivery: every port
// processes its messages in global virtual-arrival order instead of
// real-time arrival order (see seq.go). Must be called before any port
// is created. All goroutines touching the fabric must then follow the
// Gate conventions.
func (f *Fabric) Sequence() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.ports) > 0 {
		panic("simnet: Sequence after ports were created")
	}
	f.seq = newSequencer()
}

// Sequenced reports whether deterministic delivery is on.
func (f *Fabric) Sequenced() bool { return f.seq != nil }

// Gate returns the fabric's runnable-token ledger (a no-op gate when the
// fabric is not sequenced).
func (f *Fabric) Gate() Gate {
	if f.seq != nil {
		return f.seq
	}
	return nopGate{}
}

// Quiesce blocks until every message sent to dst has been fully
// processed and its receiver is parked again. Only meaningful on a
// sequenced fabric (it returns immediately otherwise); see
// Sequencer.quiesce for why the FIFO ping idiom needs replacing there.
func (f *Fabric) Quiesce(dst NodeID) {
	if f.seq != nil {
		f.seq.quiesce(dst)
	}
}

// SetLinkFn installs a per-pair link selector (e.g. intra-node vs
// inter-node). It must be called before traffic starts.
func (f *Fabric) SetLinkFn(fn func(src, dst NodeID) vtime.LinkModel) { f.linkFn = fn }

// Link reports the model used for messages from src to dst.
func (f *Fabric) Link(src, dst NodeID) vtime.LinkModel {
	if f.linkFn != nil {
		return f.linkFn(src, dst)
	}
	return f.model
}

// Messages reports the total number of messages sent so far.
func (f *Fabric) Messages() int64 { return f.msgs.Load() }

// Bytes reports the total wire bytes (bodies + headers) sent so far.
func (f *Fabric) Bytes() int64 { return f.bytes.Load() }

// NewPort registers a new endpoint. It panics if the id is taken: node
// numbering is assigned by the runtime and a collision is a bug.
func (f *Fabric) NewPort(id NodeID) *Port {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.ports[id]; ok {
		panic(fmt.Sprintf("simnet: port %d already exists", id))
	}
	p := &Port{
		id:     id,
		fabric: f,
		inbox:  make(chan *Message, inboxDepth),
		closed: make(chan struct{}),
	}
	f.ports[id] = p
	if f.seq != nil {
		f.seq.addPort(id)
	}
	return p
}

func (f *Fabric) port(id NodeID) (*Port, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p, ok := f.ports[id]
	if !ok {
		return nil, fmt.Errorf("simnet: no port %d", id)
	}
	return p, nil
}

// deliver computes timing, accounts traffic and enqueues the message.
func (f *Fabric) deliver(src, dst NodeID, m *Message, sendTime vtime.Time) (senderDone vtime.Time, err error) {
	p, err := f.port(dst)
	if err != nil {
		return sendTime, err
	}
	link := f.Link(src, dst)
	size := len(m.Body) + HeaderBytes
	senderDone = sendTime + link.SendOverhead
	m.Arrive = link.Deliver(senderDone, size)
	m.Svc = link.ServiceTime
	f.msgs.Add(1)
	f.bytes.Add(int64(size))
	if f.seq != nil {
		f.seq.insert(m)
		return senderDone, nil
	}
	select {
	case p.inbox <- m:
		return senderDone, nil
	case <-p.closed:
		return senderDone, fmt.Errorf("simnet: port %d closed", dst)
	}
}

// Port is one endpoint's attachment to the fabric.
type Port struct {
	id     NodeID
	fabric *Fabric
	inbox  chan *Message
	closed chan struct{}
	once   sync.Once
}

// ID returns the port's node id.
func (p *Port) ID() NodeID { return p.id }

// Post sends a one-way message. It returns the sender's virtual time
// after paying the send overhead (the sender does not wait for
// delivery: this is the asynchronous, RDMA-write-flavoured path used
// for DiffBatch and EvictFlush traffic).
func (p *Port) Post(dst NodeID, kind uint16, body []byte, at vtime.Time) (vtime.Time, error) {
	m := &Message{Src: p.id, Kind: kind, Body: body, fabric: p.fabric, dst: dst}
	return p.fabric.deliver(p.id, dst, m, at)
}

// Call performs a synchronous RPC: it sends the request and blocks until
// the response arrives. It returns the response kind and body and the
// caller's virtual time at which the response is in hand.
func (p *Port) Call(dst NodeID, kind uint16, body []byte, at vtime.Time) (respKind uint16, respBody []byte, doneAt vtime.Time, err error) {
	m := &Message{
		Src:    p.id,
		Kind:   kind,
		Body:   body,
		reply:  make(chan *Message, 1),
		fabric: p.fabric,
		dst:    dst,
	}
	if _, err := p.fabric.deliver(p.id, dst, m, at); err != nil {
		return 0, nil, at, err
	}
	// Sequenced fabrics count the caller as parked while it waits; the
	// replier issues the wake token (see Reply), so the reply path needs
	// no Resume here — only the close path restores the token itself.
	seq := p.fabric.seq
	if seq != nil {
		seq.Pause()
	}
	select {
	case resp := <-m.reply:
		return resp.Kind, resp.Body, vtime.Max(at, resp.Arrive), nil
	case <-p.closed:
		if seq != nil {
			seq.Resume()
		}
		return 0, nil, at, fmt.Errorf("simnet: port %d closed during call", p.id)
	}
}

// Recv blocks until a message arrives or the port is closed. The second
// result is false when the port has been closed.
func (p *Port) Recv() (*Request, bool) {
	if p.fabric.seq != nil {
		m, ok := p.fabric.seq.recv(p.id)
		if !ok {
			return nil, false
		}
		return &Request{msg: m, port: p}, true
	}
	select {
	case m := <-p.inbox:
		return &Request{msg: m, port: p}, true
	case <-p.closed:
		// Drain anything already queued so in-flight RPCs fail fast
		// rather than hang; then report closure.
		select {
		case m := <-p.inbox:
			return &Request{msg: m, port: p}, true
		default:
			return nil, false
		}
	}
}

// Close detaches the port. Subsequent sends to it fail; a blocked Recv
// returns false.
func (p *Port) Close() {
	p.once.Do(func() {
		close(p.closed)
		p.fabric.mu.Lock()
		delete(p.fabric.ports, p.id)
		p.fabric.mu.Unlock()
		if p.fabric.seq != nil {
			p.fabric.seq.close(p.id)
		}
	})
}

// Request is a received message plus the means to answer it, possibly
// later and from a different goroutine (deferred replies are how the
// manager parks lock waiters and how a memory server parks fetches that
// must wait for in-flight diffs).
type Request struct {
	msg  *Message
	port *Port
}

// Src reports the sender.
func (r *Request) Src() NodeID { return r.msg.Src }

// Kind reports the message kind.
func (r *Request) Kind() uint16 { return r.msg.Kind }

// Body reports the message body.
func (r *Request) Body() []byte { return r.msg.Body }

// Arrive reports the virtual arrival time at this port.
func (r *Request) Arrive() vtime.Time { return r.msg.Arrive }

// Svc reports the service time the receiver should charge for picking
// up this request.
func (r *Request) Svc() vtime.Time { return r.msg.Svc }

// OneWay reports whether the sender expects no response.
func (r *Request) OneWay() bool { return r.msg.reply == nil }

// Reply answers an RPC request at the given virtual time on the
// responder's clock. Replying to a one-way message panics — that is
// always a protocol bug.
func (r *Request) Reply(kind uint16, body []byte, at vtime.Time) {
	if r.msg.reply == nil {
		panic(fmt.Sprintf("simnet: reply to one-way %d message", r.msg.Kind))
	}
	link := r.port.fabric.Link(r.port.id, r.msg.Src)
	size := len(body) + HeaderBytes
	resp := &Message{
		Src:    r.port.id,
		Kind:   kind,
		Body:   body,
		Arrive: link.Deliver(at+link.SendOverhead, size),
	}
	r.port.fabric.msgs.Add(1)
	r.port.fabric.bytes.Add(int64(size))
	// On a sequenced fabric the caller parked in Call without a token;
	// issue its wake credit before signalling so the ledger never reads
	// zero while the wake is in flight.
	if s := r.port.fabric.seq; s != nil {
		s.Resume()
	}
	r.msg.reply <- resp
}
