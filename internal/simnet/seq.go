package simnet

import (
	"container/heap"
	"sync"
)

// This file makes the simulated fabric deterministic.
//
// The problem: ports process their inboxes in real-time arrival order,
// but virtual arrival times are computed independently of real time. Two
// requests whose service windows overlap get different calendar bookings
// (and different clock folds at the manager) depending on which goroutine
// the Go scheduler ran first — so identical runs produce different
// virtual times. Bit-identical results require every serial server to
// process its messages in *virtual* arrival order, independent of real
// scheduling.
//
// The fix is a conservative sequencer (stall-and-step discrete-event
// ordering). Every goroutine that can send fabric traffic is counted by
// a runnable-token ledger: +1 when it is spawned or woken, -1 when it
// parks or exits. When the count hits zero the system is quiescent — no
// goroutine can create new traffic until some pending message is
// delivered — so the set of undelivered messages is complete, and the
// one with the globally minimal virtual arrival time is safe to deliver:
// by causality (positive link latency), everything sent in the future
// arrives later than it. The step grants pending messages in sorted
// order until one wakes a parked receiver, then execution resumes.
//
// Wakeups transfer tokens with the data ("credits"): a replier calls
// Resume on the waiter's behalf *before* signalling, so the ledger never
// reads zero while a wake is in flight. The conventions are:
//
//   - spawn: the spawner calls Resume before `go`; the goroutine calls
//     Pause when it exits.
//   - blocking receive: the receiver calls Pause before receiving; the
//     sender calls Resume before sending. Credits may sit unconsumed
//     (that only delays steps, never misorders them).
//
// Sequencing is opt-in (Fabric.Sequence) and is only engaged for clean
// simulated runs: the fault injector, the retry layer's wall-clock
// timeouts and the liveness layer's heartbeats are all driven by real
// time, so runs using them keep the plain channel fabric.

// Gate is the runnable-token ledger interface components use to report
// parking and waking to the sequencer. The zero Gate of an unsequenced
// fabric is a no-op.
type Gate interface {
	// Resume adds a runnable token: a goroutine was spawned, or a wake
	// credit was issued on a parked goroutine's behalf.
	Resume()
	// Pause removes a runnable token: a goroutine parked or exited, or
	// a previously issued credit was consumed.
	Pause()
}

// nopGate is the Gate of an unsequenced fabric.
type nopGate struct{}

func (nopGate) Resume() {}
func (nopGate) Pause()  {}

// NopGate returns a no-op ledger for components that run without a
// sequenced fabric (custom transports, fault/retry/liveness runs).
func NopGate() Gate { return nopGate{} }

// seqMsg is one undelivered message in the global order heap.
type seqMsg struct {
	m    *Message
	port *seqPort
	no   uint64 // insertion tiebreak (last resort)
}

// seqLess is the deterministic delivery order: virtual arrival, then
// sender, then receiver, then kind. The insertion number only breaks
// ties between messages identical on all four — which concurrent
// senders cannot legitimately produce.
func seqLess(a, b *seqMsg) bool {
	if a.m.Arrive != b.m.Arrive {
		return a.m.Arrive < b.m.Arrive
	}
	if a.m.Src != b.m.Src {
		return a.m.Src < b.m.Src
	}
	if a.m.dst != b.m.dst {
		return a.m.dst < b.m.dst
	}
	if a.m.Kind != b.m.Kind {
		return a.m.Kind < b.m.Kind
	}
	return a.no < b.no
}

// seqHeap is a min-heap of undelivered messages.
type seqHeap []*seqMsg

func (h seqHeap) Len() int            { return len(h) }
func (h seqHeap) Less(i, j int) bool  { return seqLess(h[i], h[j]) }
func (h seqHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *seqHeap) Push(x interface{}) { *h = append(*h, x.(*seqMsg)) }
func (h *seqHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// seqPort is the sequencer's view of one port.
type seqPort struct {
	id      NodeID
	grantq  []*Message // delivered, awaiting Recv pickup (in grant order)
	pending int        // undelivered messages for this port still in the heap
	waiting int        // goroutines parked in Recv
	closed  bool
	cond    *sync.Cond
}

// Sequencer orders message delivery by virtual arrival time.
type Sequencer struct {
	mu    sync.Mutex
	run   int // runnable tokens
	ports map[NodeID]*seqPort
	heap  seqHeap
	no    uint64
	idle  *sync.Cond // broadcast whenever delivery state changes (Quiesce)
}

func newSequencer() *Sequencer {
	s := &Sequencer{ports: make(map[NodeID]*seqPort)}
	s.idle = sync.NewCond(&s.mu)
	return s
}

// Resume implements Gate.
func (s *Sequencer) Resume() {
	s.mu.Lock()
	s.run++
	s.mu.Unlock()
}

// Pause implements Gate.
func (s *Sequencer) Pause() {
	s.mu.Lock()
	s.run--
	if s.run == 0 {
		s.step()
	}
	s.mu.Unlock()
}

// addPort registers a port with the sequencer.
func (s *Sequencer) addPort(id NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := &seqPort{id: id}
	p.cond = sync.NewCond(&s.mu)
	s.ports[id] = p
}

// insert enqueues an undelivered message. Called from deliver with the
// sender counted as runnable; if the ledger nevertheless reads zero
// (an uncounted background sender, e.g. during shutdown), the insert
// itself triggers a step so the message is not stranded.
func (s *Sequencer) insert(m *Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.ports[m.dst]
	if !ok || p.closed {
		return // racing a close; the sender's deliver already validated dst
	}
	s.no++
	heap.Push(&s.heap, &seqMsg{m: m, port: p, no: s.no})
	p.pending++
	if s.run == 0 {
		s.step()
	}
}

// step delivers pending messages in global virtual-arrival order until
// one wakes a parked receiver. Caller holds s.mu with s.run == 0.
func (s *Sequencer) step() {
	for s.heap.Len() > 0 {
		e := heap.Pop(&s.heap).(*seqMsg)
		p := e.port
		p.pending--
		if p.closed {
			continue // dropped, like a send to a closed port
		}
		p.grantq = append(p.grantq, e.m)
		if p.waiting > 0 {
			// Transfer a token to the receiver we are about to wake.
			s.run++
			p.cond.Signal()
			break
		}
	}
	s.idle.Broadcast()
}

// recv blocks until a message is granted to the port (in global virtual
// order) or the port closes. After a close, remaining granted and
// pending messages drain in order before ok=false is reported.
func (s *Sequencer) recv(id NodeID) (*Message, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.ports[id]
	if !ok {
		return nil, false
	}
	for {
		if len(p.grantq) > 0 {
			m := p.grantq[0]
			p.grantq = p.grantq[1:]
			s.idle.Broadcast()
			return m, true
		}
		if p.closed {
			if m := s.takePendingFor(p); m != nil {
				return m, true
			}
			return nil, false
		}
		p.waiting++
		s.run--
		if s.run == 0 {
			// We were the last runnable goroutine; this step may grant to
			// OUR port and signal before we ever reach Wait, so the sleep
			// below must recheck the condition (never wait unconditionally).
			s.step()
		}
		s.idle.Broadcast()
		for len(p.grantq) == 0 && !p.closed {
			p.cond.Wait()
		}
		p.waiting--
		// Woken (or never slept): the waker — step, close, or our own
		// step above — issued our token already.
	}
}

// takePendingFor extracts the port's earliest undelivered message after
// a close, preserving delivery order for the drain path.
func (s *Sequencer) takePendingFor(p *seqPort) *Message {
	if p.pending == 0 {
		return nil
	}
	best := -1
	for i := range s.heap {
		if s.heap[i].port != p {
			continue
		}
		if best < 0 || seqLess(s.heap[i], s.heap[best]) {
			best = i
		}
	}
	if best < 0 {
		p.pending = 0
		return nil
	}
	e := s.heap[best]
	heap.Remove(&s.heap, best)
	p.pending--
	return e.m
}

// close marks the port closed and wakes its parked receivers (issuing
// their tokens, since no grant will).
func (s *Sequencer) close(id NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.ports[id]
	if !ok {
		return
	}
	p.closed = true
	s.run += p.waiting
	p.cond.Broadcast()
	s.idle.Broadcast()
}

// quiesce blocks until the port has no undelivered or unconsumed
// messages and its receiver is parked — i.e. everything sent to it has
// been fully processed. It replaces the FIFO-inbox drain idiom ("a ping
// answered proves earlier one-ways were handled"), which sequencing
// breaks: a ping's small virtual arrival time would let it overtake
// queued batches.
func (s *Sequencer) quiesce(id NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.ports[id]
	if !ok {
		return
	}
	if p.pending == 0 && len(p.grantq) == 0 && (p.waiting > 0 || p.closed) {
		return
	}
	// Park while watching: the waiter must release its token or the
	// steps that drain the port can never fire.
	s.run--
	if s.run == 0 {
		s.step()
	}
	for !(p.pending == 0 && len(p.grantq) == 0 && (p.waiting > 0 || p.closed)) {
		s.idle.Wait()
	}
	s.run++
}
