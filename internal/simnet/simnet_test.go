package simnet

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/vtime"
)

// testModel: 1 us latency, 1 GB/s (1 byte/ns), no overheads, 100 ns svc.
var testModel = vtime.LinkModel{
	Name:         "test",
	Latency:      1000,
	BytesPerSec:  1e9,
	SendOverhead: 50,
	ServiceTime:  100,
}

func TestPostDeliversWithModeledArrival(t *testing.T) {
	f := NewFabric(testModel)
	a := f.NewPort(1)
	b := f.NewPort(2)

	done, err := a.Post(2, 7, []byte("hello"), 500)
	if err != nil {
		t.Fatal(err)
	}
	if done != 550 { // send time + overhead
		t.Errorf("sender done at %v, want 550", done)
	}
	req, ok := b.Recv()
	if !ok {
		t.Fatal("Recv failed")
	}
	if req.Kind() != 7 || string(req.Body()) != "hello" || req.Src() != 1 {
		t.Errorf("bad request: kind=%d body=%q src=%d", req.Kind(), req.Body(), req.Src())
	}
	// arrival = 550 + latency 1000 + (5+32 bytes at 1 B/ns) = 1587
	if req.Arrive() != 1587 {
		t.Errorf("Arrive = %v, want 1587", req.Arrive())
	}
	if req.Svc() != 100 {
		t.Errorf("Svc = %v, want 100", req.Svc())
	}
	if !req.OneWay() {
		t.Error("Post should produce a one-way request")
	}
}

func TestCallRoundTrip(t *testing.T) {
	f := NewFabric(testModel)
	cli := f.NewPort(1)
	srv := f.NewPort(2)

	go func() {
		req, ok := srv.Recv()
		if !ok {
			t.Error("server Recv failed")
			return
		}
		if req.OneWay() {
			t.Error("Call should not be one-way")
			return
		}
		// Server handles at arrival + service.
		at := req.Arrive() + req.Svc()
		req.Reply(req.Kind()+1, []byte("pong"), at)
	}()

	kind, body, doneAt, err := cli.Call(2, 10, []byte("ping"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if kind != 11 || string(body) != "pong" {
		t.Errorf("resp kind=%d body=%q", kind, body)
	}
	// Request: send 0+50, arrive 50+1000+36=1086, svc -> 1186.
	// Reply: 1186+50 send, arrive 1236+1000+36 = 2272.
	if doneAt != 2272 {
		t.Errorf("doneAt = %v, want 2272", doneAt)
	}
}

func TestCallToMissingPortFails(t *testing.T) {
	f := NewFabric(testModel)
	a := f.NewPort(1)
	if _, _, _, err := a.Call(99, 1, nil, 0); err == nil {
		t.Fatal("Call to missing port succeeded")
	}
	if _, err := a.Post(99, 1, nil, 0); err == nil {
		t.Fatal("Post to missing port succeeded")
	}
}

func TestDuplicatePortPanics(t *testing.T) {
	f := NewFabric(testModel)
	f.NewPort(1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate NewPort did not panic")
		}
	}()
	f.NewPort(1)
}

func TestReplyToOneWayPanics(t *testing.T) {
	f := NewFabric(testModel)
	a := f.NewPort(1)
	b := f.NewPort(2)
	if _, err := a.Post(2, 1, nil, 0); err != nil {
		t.Fatal(err)
	}
	req, _ := b.Recv()
	defer func() {
		if recover() == nil {
			t.Fatal("Reply to one-way did not panic")
		}
	}()
	req.Reply(2, nil, 0)
}

func TestCloseUnblocksRecv(t *testing.T) {
	f := NewFabric(testModel)
	p := f.NewPort(1)
	done := make(chan bool)
	go func() {
		_, ok := p.Recv()
		done <- ok
	}()
	p.Close()
	if ok := <-done; ok {
		t.Fatal("Recv on closed port returned ok")
	}
	// Sending to a closed (removed) port fails.
	q := f.NewPort(2)
	if _, err := q.Post(1, 1, nil, 0); err == nil {
		t.Fatal("Post to closed port succeeded")
	}
	// Close is idempotent.
	p.Close()
}

func TestFIFOPerSender(t *testing.T) {
	f := NewFabric(testModel)
	a := f.NewPort(1)
	b := f.NewPort(2)
	at := vtime.Time(0)
	for i := 0; i < 100; i++ {
		var err error
		at, err = a.Post(2, uint16(i), nil, at)
		if err != nil {
			t.Fatal(err)
		}
	}
	prev := vtime.Time(-1)
	for i := 0; i < 100; i++ {
		req, ok := b.Recv()
		if !ok {
			t.Fatal("Recv failed")
		}
		if req.Kind() != uint16(i) {
			t.Fatalf("message %d arrived out of order (kind %d)", i, req.Kind())
		}
		if req.Arrive() <= prev {
			t.Fatalf("arrivals not strictly increasing: %v after %v", req.Arrive(), prev)
		}
		prev = req.Arrive()
	}
}

func TestTrafficAccounting(t *testing.T) {
	f := NewFabric(testModel)
	a := f.NewPort(1)
	f.NewPort(2)
	if _, err := a.Post(2, 1, make([]byte, 100), 0); err != nil {
		t.Fatal(err)
	}
	if got := f.Messages(); got != 1 {
		t.Errorf("Messages = %d", got)
	}
	if got := f.Bytes(); got != 100+HeaderBytes {
		t.Errorf("Bytes = %d, want %d", got, 100+HeaderBytes)
	}
}

func TestLinkFnSelectsPerPair(t *testing.T) {
	fast := vtime.LinkModel{Name: "fast", Latency: 10, BytesPerSec: 1e9, ServiceTime: 1}
	slow := vtime.LinkModel{Name: "slow", Latency: 10000, BytesPerSec: 1e9, ServiceTime: 1}
	f := NewFabric(slow)
	f.SetLinkFn(func(src, dst NodeID) vtime.LinkModel {
		if src == 1 && dst == 2 {
			return fast
		}
		return slow
	})
	a := f.NewPort(1)
	b := f.NewPort(2)
	if _, err := a.Post(2, 1, nil, 0); err != nil {
		t.Fatal(err)
	}
	req, _ := b.Recv()
	if req.Arrive() != 10+HeaderBytes { // latency + 32B at 1 B/ns
		t.Errorf("fast-link arrival = %v, want 42", req.Arrive())
	}
}

func TestConcurrentCallsAllAnswered(t *testing.T) {
	f := NewFabric(testModel)
	srv := f.NewPort(1000)
	const clients = 16
	go func() {
		for i := 0; i < clients; i++ {
			req, ok := srv.Recv()
			if !ok {
				return
			}
			req.Reply(req.Kind(), req.Body(), req.Arrive()+req.Svc())
		}
	}()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			p := f.NewPort(NodeID(c))
			kind, body, _, err := p.Call(1000, uint16(c), []byte{byte(c)}, vtime.Time(c))
			if err != nil || kind != uint16(c) || body[0] != byte(c) {
				t.Errorf("client %d: kind=%d err=%v", c, kind, err)
			}
		}(c)
	}
	wg.Wait()
}

// Property: arrival is never before send time + latency, regardless of
// size or clock.
func TestArrivalLowerBoundProperty(t *testing.T) {
	f := NewFabric(testModel)
	a := f.NewPort(1)
	b := f.NewPort(2)
	go func() {
		for {
			req, ok := b.Recv()
			if !ok {
				return
			}
			_ = req
		}
	}()
	prop := func(at uint32, size uint16) bool {
		m := &Message{Src: 1, Kind: 1, Body: make([]byte, int(size)%2048), fabric: f, dst: 2}
		_, err := f.deliver(1, 2, m, vtime.Time(at))
		if err != nil {
			return false
		}
		return m.Arrive >= vtime.Time(at)+testModel.Latency
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	a.Close()
	b.Close()
}
